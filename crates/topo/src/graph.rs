//! The topology graph: switches and hosts connected by bidirectional links
//! with per-node port numbers.

use std::fmt;

/// Index of a node within a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// The level of a node in a (AB-)FatTree, used by routing schemes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Level {
    /// An end host.
    Host,
    /// A top-of-rack (edge) switch.
    Edge,
    /// An aggregation switch.
    Agg,
    /// A core switch.
    Core,
    /// A switch in a topology without levels (e.g. the chain).
    Plain,
}

/// The wiring type of a FatTree pod (Liu et al.'s A/B subtrees).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PodType {
    /// Conventional wiring.
    A,
    /// Staggered wiring (AB FatTree only).
    B,
}

/// Metadata attached to a topology node.
#[derive(Clone, Debug)]
pub struct NodeInfo {
    /// Human-readable name (also the DOT node id).
    pub name: String,
    /// Level in the fabric.
    pub level: Level,
    /// Pod index for edge/aggregation switches.
    pub pod: Option<usize>,
    /// Pod wiring type for edge/aggregation switches in an AB FatTree.
    pub pod_type: Option<PodType>,
}

/// A link endpoint: the local port and the remote `(node, port)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PortPeer {
    /// Local port number (1-based, unique per node).
    pub port: u32,
    /// The node on the far end.
    pub peer: NodeId,
    /// The far end's port number.
    pub peer_port: u32,
}

/// An undirected network topology with numbered ports.
///
/// # Examples
///
/// ```
/// use mcnetkat_topo::{Level, Topology};
/// let mut t = Topology::new();
/// let a = t.add_switch("s1", Level::Plain);
/// let b = t.add_switch("s2", Level::Plain);
/// let (pa, pb) = t.link(a, b);
/// assert_eq!(t.neighbor(a, pa), Some((b, pb)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    adjacency: Vec<Vec<PortPeer>>,
    hosts: Vec<NodeId>,
    switches: Vec<NodeId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a switch with the given name and level.
    pub fn add_switch(&mut self, name: &str, level: Level) -> NodeId {
        self.add_node(NodeInfo {
            name: name.to_owned(),
            level,
            pod: None,
            pod_type: None,
        })
    }

    /// Adds a host.
    pub fn add_host(&mut self, name: &str) -> NodeId {
        self.add_node(NodeInfo {
            name: name.to_owned(),
            level: Level::Host,
            pod: None,
            pod_type: None,
        })
    }

    /// Adds a node with full metadata.
    pub fn add_node(&mut self, info: NodeInfo) -> NodeId {
        let id = NodeId(self.nodes.len());
        let is_host = matches!(info.level, Level::Host);
        self.nodes.push(info);
        self.adjacency.push(Vec::new());
        if is_host {
            self.hosts.push(id);
        } else {
            self.switches.push(id);
        }
        id
    }

    /// Connects `a` and `b`, assigning the next free port on each side.
    /// Returns `(port_on_a, port_on_b)`.
    pub fn link(&mut self, a: NodeId, b: NodeId) -> (u32, u32) {
        let pa = self.adjacency[a.0].len() as u32 + 1;
        let pb = self.adjacency[b.0].len() as u32 + 1;
        self.link_ports(a, pa, b, pb);
        (pa, pb)
    }

    /// Connects `a:pa` to `b:pb` with explicit port numbers.
    ///
    /// # Panics
    ///
    /// Panics if either port is already in use.
    pub fn link_ports(&mut self, a: NodeId, pa: u32, b: NodeId, pb: u32) {
        assert!(
            self.neighbor(a, pa).is_none(),
            "port {pa} on {} already wired",
            self.nodes[a.0].name
        );
        assert!(
            self.neighbor(b, pb).is_none(),
            "port {pb} on {} already wired",
            self.nodes[b.0].name
        );
        self.adjacency[a.0].push(PortPeer {
            port: pa,
            peer: b,
            peer_port: pb,
        });
        self.adjacency[b.0].push(PortPeer {
            port: pb,
            peer: a,
            peer_port: pa,
        });
    }

    /// Node metadata.
    pub fn info(&self, n: NodeId) -> &NodeInfo {
        &self.nodes[n.0]
    }

    /// Mutable node metadata (used by generators to set pod info).
    pub fn info_mut(&mut self, n: NodeId) -> &mut NodeInfo {
        &mut self.nodes[n.0]
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// All switches, in id order.
    pub fn switches(&self) -> &[NodeId] {
        &self.switches
    }

    /// All hosts, in id order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The links of `n` as `(port, peer, peer_port)` entries.
    pub fn ports(&self, n: NodeId) -> &[PortPeer] {
        &self.adjacency[n.0]
    }

    /// The `(peer, peer_port)` on the far side of `n:port`, if wired.
    pub fn neighbor(&self, n: NodeId, port: u32) -> Option<(NodeId, u32)> {
        self.adjacency[n.0]
            .iter()
            .find(|pp| pp.port == port)
            .map(|pp| (pp.peer, pp.peer_port))
    }

    /// The port of `n` facing `m`, if any.
    pub fn port_towards(&self, n: NodeId, m: NodeId) -> Option<u32> {
        self.adjacency[n.0]
            .iter()
            .find(|pp| pp.peer == m)
            .map(|pp| pp.port)
    }

    /// The maximum degree over all nodes (the `d` of §7's failure model).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Looks up a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|i| i.name == name).map(NodeId)
    }

    /// The ProbNetKAT switch number for a node (1-based node id).
    ///
    /// Switch numbering is stable: `sw = id + 1` so that 0 stays reserved
    /// as the canonical "unset" value.
    pub fn sw_value(&self, n: NodeId) -> u32 {
        n.0 as u32 + 1
    }

    /// Inverse of [`Topology::sw_value`].
    pub fn node_of_sw(&self, sw: u32) -> Option<NodeId> {
        let ix = sw.checked_sub(1)? as usize;
        (ix < self.nodes.len()).then_some(NodeId(ix))
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "topology: {} switches, {} hosts",
            self.switches.len(),
            self.hosts.len()
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linking_assigns_sequential_ports() {
        let mut t = Topology::new();
        let a = t.add_switch("a", Level::Plain);
        let b = t.add_switch("b", Level::Plain);
        let c = t.add_switch("c", Level::Plain);
        let (p1, _) = t.link(a, b);
        let (p2, _) = t.link(a, c);
        assert_eq!((p1, p2), (1, 2));
        assert_eq!(t.neighbor(a, 1), Some((b, 1)));
        assert_eq!(t.neighbor(a, 2), Some((c, 1)));
        assert_eq!(t.port_towards(c, a), Some(1));
    }

    #[test]
    fn explicit_ports_reject_conflicts() {
        let mut t = Topology::new();
        let a = t.add_switch("a", Level::Plain);
        let b = t.add_switch("b", Level::Plain);
        let c = t.add_switch("c", Level::Plain);
        t.link_ports(a, 5, b, 1);
        let clash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = t.clone();
            t2.link_ports(a, 5, c, 1);
        }));
        assert!(clash.is_err());
    }

    #[test]
    fn hosts_and_switches_are_partitioned() {
        let mut t = Topology::new();
        let s = t.add_switch("s", Level::Edge);
        let h = t.add_host("h");
        assert_eq!(t.switches(), &[s]);
        assert_eq!(t.hosts(), &[h]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sw_values_round_trip() {
        let mut t = Topology::new();
        let a = t.add_switch("a", Level::Plain);
        assert_eq!(t.sw_value(a), 1);
        assert_eq!(t.node_of_sw(1), Some(a));
        assert_eq!(t.node_of_sw(0), None);
        assert_eq!(t.node_of_sw(99), None);
    }

    #[test]
    fn max_degree_tracks_links() {
        let mut t = Topology::new();
        let a = t.add_switch("a", Level::Plain);
        let b = t.add_switch("b", Level::Plain);
        let c = t.add_switch("c", Level::Plain);
        t.link(a, b);
        t.link(a, c);
        assert_eq!(t.max_degree(), 2);
    }
}
