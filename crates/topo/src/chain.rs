//! The Bayonet "chain of diamonds" topology (Figure 9), used for the
//! cross-tool comparison of Figure 10.

use crate::{Level, NodeId, Topology};

/// Builds a chain of `k` diamonds with hosts `H1` and `H2` at the ends.
///
/// Each diamond has switches `S(4i)…S(4i+3)`: `S(4i)` forwards to `S(4i+1)`
/// (upper) and `S(4i+2)` (lower) which both forward to `S(4i+3)`; the link
/// `S(4i+2) → S(4i+3)` is the one that fails with probability `pfail` in
/// the benchmark's failure model.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// let t = mcnetkat_topo::chain(2);
/// assert_eq!(t.switches().len(), 8);
/// assert_eq!(t.hosts().len(), 2);
/// ```
pub fn chain(k: usize) -> Topology {
    assert!(k > 0, "chain needs at least one diamond");
    let mut t = Topology::new();
    let switches: Vec<NodeId> = (0..4 * k)
        .map(|i| t.add_switch(&format!("S{i}"), Level::Plain))
        .collect();
    let h1 = t.add_host("H1");
    let h2 = t.add_host("H2");
    t.link(h1, switches[0]);
    for d in 0..k {
        let s0 = switches[4 * d];
        let s1 = switches[4 * d + 1];
        let s2 = switches[4 * d + 2];
        let s3 = switches[4 * d + 3];
        t.link(s0, s1);
        t.link(s0, s2);
        t.link(s1, s3);
        t.link(s2, s3);
        if d + 1 < k {
            t.link(s3, switches[4 * (d + 1)]);
        }
    }
    t.link(switches[4 * k - 1], h2);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_k() {
        for k in 1..5 {
            let t = chain(k);
            assert_eq!(t.switches().len(), 4 * k);
            assert_eq!(t.hosts().len(), 2);
        }
    }

    #[test]
    fn diamond_connectivity() {
        let t = chain(1);
        let s0 = t.find("S0").unwrap();
        let s1 = t.find("S1").unwrap();
        let s2 = t.find("S2").unwrap();
        let s3 = t.find("S3").unwrap();
        assert!(t.port_towards(s0, s1).is_some());
        assert!(t.port_towards(s0, s2).is_some());
        assert!(t.port_towards(s1, s3).is_some());
        assert!(t.port_towards(s2, s3).is_some());
        assert!(t.port_towards(s0, s3).is_none());
    }

    #[test]
    fn diamonds_are_chained() {
        let t = chain(3);
        for d in 0..2 {
            let tail = t.find(&format!("S{}", 4 * d + 3)).unwrap();
            let head = t.find(&format!("S{}", 4 * (d + 1))).unwrap();
            assert!(t.port_towards(tail, head).is_some(), "diamond {d}");
        }
    }

    #[test]
    fn hosts_cap_the_ends() {
        let t = chain(2);
        let h1 = t.find("H1").unwrap();
        let h2 = t.find("H2").unwrap();
        assert!(t.port_towards(h1, t.find("S0").unwrap()).is_some());
        assert!(t.port_towards(h2, t.find("S7").unwrap()).is_some());
    }
}
