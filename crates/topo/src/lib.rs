//! Network topologies for McNetKAT: graphs, Graphviz (DOT) I/O, and the
//! generators used in the paper's evaluation — FatTree (§6, Figure 6),
//! AB FatTree (§7, Figure 11a), and the Bayonet chain topology (Figure 9).

#![forbid(unsafe_code)]

mod abfattree;
mod chain;
mod dot;
mod fattree;
mod graph;
mod paths;

pub use abfattree::ab_fattree;
pub use chain::chain;
pub use dot::{parse_dot, to_dot, DotError};
pub use fattree::fattree;
pub use graph::{Level, NodeId, NodeInfo, PodType, PortPeer, Topology};
pub use paths::ShortestPaths;
