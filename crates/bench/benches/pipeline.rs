//! Criterion microbenchmarks (E10): the compilation pipeline stage by
//! stage, plus ablations for the design choices called out in DESIGN.md —
//! solver backend choice and exact-vs-float loop solving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcnetkat_fdd::{CompileOptions, Manager};
use mcnetkat_linalg::{AbsorbingChain, SolverBackend};
use mcnetkat_net::{chain_benchmark, FailureModel, FailureSpec, NetworkModel, RoutingScheme, Srlg};
use mcnetkat_num::Ratio;
use mcnetkat_prism::{check_reachability, translate, McMode};
use mcnetkat_topo::fattree;

/// The diagram auditor walks every node and interning table after each
/// model compile — timings taken with it on are meaningless. The same
/// goes for the fault-injection registry: every armed-site check is a
/// global-mutex hit on the hot path. Every bench group asserts both are
/// off (feature unification can silently turn either on).
// Runtime (not const) on purpose: `cargo test --features audit` builds
// the bench harness without running it, and must keep compiling.
#[allow(clippy::assertions_on_constants)]
fn assert_audit_off() {
    assert!(
        !mcnetkat_fdd::AUDIT_ENABLED,
        "the `audit` feature is enabled in a benchmark build — timings \
         would include invariant audits; rebuild without it"
    );
    assert!(
        !mcnetkat_fdd::FAILPOINTS_ENABLED,
        "the `failpoints` feature is enabled in a benchmark build — \
         timings would include fault-injection checks; rebuild without it"
    );
}

fn bench_fattree_compile(c: &mut Criterion) {
    assert_audit_off();
    let mut group = c.benchmark_group("fattree_compile");
    group.sample_size(10);
    // p = 8 was the body-compile frontier before the fused per-switch
    // pipeline (965 ms at f1000); p = 10 and 12 were out of reach
    // entirely. Tracking them keeps the regression gate pointed at the
    // numbers that matter for the paper's p = 16+ ambitions.
    for p in [4usize, 6, 8] {
        let topo = fattree(p);
        let dst = topo.find("edge0_0").unwrap();
        for (label, failure) in [
            ("f0", FailureModel::none()),
            ("f1000", FailureModel::independent(Ratio::new(1, 1000))),
        ] {
            let model = NetworkModel::new(topo.clone(), dst, RoutingScheme::Ecmp, failure);
            group.bench_with_input(BenchmarkId::new(label, p), &model, |b, model| {
                b.iter(|| {
                    let mgr = Manager::new();
                    model.compile(&mgr).unwrap()
                })
            });
        }
    }
    // Scales unlocked by the fused pipeline (failure-free so the loop
    // solve, not the failure draw, dominates).
    for p in [10usize, 12] {
        let topo = fattree(p);
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(topo, dst, RoutingScheme::Ecmp, FailureModel::none());
        group.bench_with_input(BenchmarkId::new("f0", p), &model, |b, model| {
            b.iter(|| {
                let mgr = Manager::new();
                model.compile(&mgr).unwrap()
            })
        });
    }
    // The scale unlocked by the sparse SCC solve with symmetry lumping:
    // p = 16 *with* failures, whose loop chain (thousands of transient
    // states) the dense while-loop solve could not touch.
    {
        let topo = fattree(16);
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(
            topo,
            dst,
            RoutingScheme::Ecmp,
            FailureModel::independent(Ratio::new(1, 1000)),
        );
        group.bench_with_input(BenchmarkId::new("f1000", 16usize), &model, |b, model| {
            b.iter(|| {
                let mgr = Manager::new();
                model.compile(&mgr).unwrap()
            })
        });
    }
    group.finish();
}

/// Correlated shared-risk-group failures: one "line card" group per
/// non-edge switch (all its down links fail together, pr 1/1000).
/// Exercises the group-draw encoding, the per-hop group erasure, and the
/// final scratch-field projection (`Manager::forget`).
fn bench_fattree_srlg(c: &mut Criterion) {
    assert_audit_off();
    let mut group = c.benchmark_group("fattree_srlg");
    group.sample_size(10);
    // p = 12 rides on the sparse SCC loop solve — with the dense solve it
    // was out of benchmarking range entirely.
    for p in [4usize, 6, 12] {
        let topo = fattree(p);
        let dst = topo.find("edge0_0").unwrap();
        let pr = Ratio::new(1, 1000);
        let spec = FailureSpec::independent(Ratio::zero()).with_groups(Srlg::linecards(&topo, &pr));
        let model = NetworkModel::new(topo.clone(), dst, RoutingScheme::Ecmp, spec);
        group.bench_with_input(BenchmarkId::new("linecard1000", p), &model, |b, model| {
            b.iter(|| {
                let mgr = Manager::new();
                model.compile(&mgr).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_chain_engines(c: &mut Criterion) {
    assert_audit_off();
    let mut group = c.benchmark_group("chain_engines");
    group.sample_size(10);
    let k = 4;
    let bench = chain_benchmark(k, Ratio::new(1, 1000));
    group.bench_function("native_fdd", |b| {
        b.iter(|| {
            let mgr = Manager::new();
            let fdd = mgr.compile(&bench.program).unwrap();
            mgr.prob_matching(fdd, &bench.input, &bench.accept)
        })
    });
    group.bench_function("prism_exact", |b| {
        b.iter(|| {
            let auto = translate(&bench.program).unwrap();
            check_reachability(&auto, &bench.input, &bench.accept, McMode::Exact).unwrap()
        })
    });
    group.bench_function("prism_approx", |b| {
        b.iter(|| {
            let auto = translate(&bench.program).unwrap();
            check_reachability(&auto, &bench.input, &bench.accept, McMode::Approx).unwrap()
        })
    });
    group.bench_function("baseline_exact_inference", |b| {
        b.iter(|| {
            mcnetkat_baseline::ExactInference::new(64).query(
                &bench.program,
                &bench.input,
                &bench.accept,
            )
        })
    });
    group.finish();
}

/// Ablation: the same absorbing chain solved by each linear backend.
fn bench_solver_backends(c: &mut Criterion) {
    assert_audit_off();
    let mut group = c.benchmark_group("solver_backends");
    // A leaky random-walk chain with 400 transient states: each state
    // moves forward/backward with probability 0.45 and absorbs with 0.1,
    // the shape (and conditioning) of real loop chains.
    let n = 400;
    let mut chain = AbsorbingChain::new(n + 2);
    chain.set_absorbing(n);
    chain.set_absorbing(n + 1);
    for s in 0..n {
        let fwd = if s + 1 >= n { n } else { s + 1 };
        chain.add(s, fwd, Ratio::new(9, 20));
        let back = if s == 0 { n + 1 } else { s - 1 };
        chain.add(s, back, Ratio::new(9, 20));
        chain.add(s, n, Ratio::new(1, 10));
    }
    // `SparseScc` is deliberately absent: it solves in exact rational
    // arithmetic, and this chain is a single 400-state SCC — the one shape
    // where exact elimination is hopeless (seconds, not microseconds; the
    // entries grow into huge rationals). Its regime — many small SCCs
    // and lumped symmetric blocks — is what `loop_solving/sparse_scc` and
    // the `fattree_compile` benchmarks measure.
    for backend in [
        SolverBackend::SparseLu,
        SolverBackend::GaussSeidel,
        SolverBackend::DenseLu,
    ] {
        group.bench_function(format!("{backend:?}"), |b| {
            b.iter(|| chain.solve(backend).unwrap())
        });
    }
    group.finish();
}

/// Ablation: exact rational vs float loop solving inside the compiler,
/// plus the structured sparse solve that replaced both as the default.
/// The float/exact arms pin `SparseLu` explicitly — the default backend
/// is now `SparseScc`, which is exact at every size and ignores
/// `exact_threshold`, so without the pin both arms would measure the
/// same thing.
fn bench_exact_vs_float_loops(c: &mut Criterion) {
    assert_audit_off();
    let mut group = c.benchmark_group("loop_solving");
    group.sample_size(10);
    let bench = chain_benchmark(3, Ratio::new(1, 100));
    for (label, exact_threshold) in [("float", 0usize), ("exact", 10_000)] {
        let opts = CompileOptions {
            backend: SolverBackend::SparseLu,
            exact_threshold,
            ..CompileOptions::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mgr = Manager::new();
                mgr.compile_with(&bench.program, &opts).unwrap()
            })
        });
    }
    group.bench_function("sparse_scc", |b| {
        b.iter(|| {
            let mgr = Manager::new();
            mgr.compile_with(&bench.program, &CompileOptions::default())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fattree_compile,
    bench_fattree_srlg,
    bench_chain_engines,
    bench_solver_backends,
    bench_exact_vs_float_loops
);
criterion_main!(benches);
