//! Shared infrastructure for the benchmark binaries: timing, table
//! formatting, and scale control.
//!
//! Every figure/table of the paper's evaluation has a dedicated binary in
//! `src/bin` (see `DESIGN.md`'s per-experiment index). Binaries accept a
//! `MCNETKAT_SCALE` environment variable: `small` (default, finishes in
//! seconds), `paper` (closer to the paper's ranges; minutes).

#![forbid(unsafe_code)]

use std::time::Instant;

/// Measurement scale for benchmark binaries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Fast smoke-scale parameters.
    Small,
    /// Parameters approaching the paper's (slow).
    Paper,
}

/// Reads the scale from `MCNETKAT_SCALE`.
pub fn scale() -> Scale {
    match std::env::var("MCNETKAT_SCALE").as_deref() {
        Ok("paper") => Scale::Paper,
        _ => Scale::Small,
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// A simple aligned-text table writer.
#[derive(Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies each cell).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            (0..ncols)
                .map(|i| format!("{:>width$}", cells[i], width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        let rule = "-".repeat(out.len());
        out.push('\n');
        out.push_str(&rule);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with three decimal places.
pub fn secs(t: f64) -> String {
    format!("{t:.3}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["k", "time"]);
        t.row(vec!["1".into(), "0.5s".into()]);
        t.row(vec!["100".into(), "12.0s".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('k'));
        assert!(lines[3].contains("100"));
    }

    #[test]
    fn timed_returns_result() {
        let (v, t) = timed(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
