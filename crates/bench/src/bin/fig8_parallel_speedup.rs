//! E3 / Figure 8 — speedup from the parallel per-switch backend.
//!
//! Compiles a FatTree model with 1..=N worker threads and reports the
//! speedup over one worker. The paper measured machines in a cluster; we
//! sweep threads on one machine and expect near-linear scaling up to the
//! physical core count.

use mcnetkat_bench::{scale, secs, timed, Scale, Table};
use mcnetkat_fdd::Manager;
use mcnetkat_net::{compile_model_parallel, FailureModel, NetworkModel, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_topo::fattree;

fn main() {
    let p = match scale() {
        Scale::Small => 8,
        Scale::Paper => 14,
    };
    let topo = fattree(p);
    let dst = topo.find("edge0_0").unwrap();
    let model = NetworkModel::new(
        topo,
        dst,
        RoutingScheme::F10_3,
        FailureModel::independent(Ratio::new(1, 100)),
    );
    let ncpu = std::thread::available_parallelism().map_or(4, |n| n.get());
    let workers: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&w| w <= ncpu.max(4))
        .collect();

    println!(
        "Figure 8 — parallel speedup (FatTree p={p}, {} switches, {} cores)\n",
        model.topo.switches().len(),
        ncpu
    );
    if ncpu == 1 {
        println!("note: this host exposes a single core; expect speedup ≈ 1.");
        println!("      (the paper's near-linear curve needs multi-core hardware)\n");
    }
    let mut table = Table::new(&["workers", "time", "speedup"]);
    let mut base = None;
    for w in workers {
        let mgr = Manager::new();
        let (res, t) = timed(|| compile_model_parallel(&mgr, &model, w, &Default::default()));
        res.expect("parallel compile");
        let baseline = *base.get_or_insert(t);
        table.row(vec![
            w.to_string(),
            secs(t),
            format!("{:.2}x", baseline / t),
        ]);
    }
    table.print();
}
