//! E4 / Figure 10 — the chain-topology tool comparison.
//!
//! Computes `P[H1 → H2 delivery]` on chains of `k` diamonds
//! (`pfail = 1/1000`) with four engines:
//!
//! * `PNK` — the native FDD backend (closed-form loop solving),
//! * `PPNK exact` — PRISM translation + exact rational model checking,
//! * `PPNK approx` — PRISM translation + float iterative model checking,
//! * `baseline` — the general-purpose exact-inference engine
//!   (Bayonet/PSI stand-in, bounded unrolling).
//!
//! Paper shape: the general-purpose engine dies orders of magnitude before
//! the domain-specific backend; PRISM sits in between.

use mcnetkat_bench::{scale, secs, timed, Scale, Table};
use mcnetkat_fdd::Manager;
use mcnetkat_net::{chain_benchmark, chain_expected_delivery};
use mcnetkat_num::Ratio;
use mcnetkat_prism::{check_reachability, translate, McMode};

fn main() {
    // Per-engine size cutoffs, mirroring the paper's one-hour/64 GB
    // limits: beyond them an engine is reported as DNF.
    let (ks, exact_cutoff, approx_cutoff, baseline_cutoff): (Vec<usize>, usize, usize, usize) =
        match scale() {
            Scale::Small => (vec![1, 2, 4, 8, 16], 4, 8, 4),
            Scale::Paper => (vec![1, 2, 4, 8, 16, 32, 64, 128], 8, 16, 8),
        };
    let pfail = Ratio::new(1, 1000);
    println!("Figure 10 — chain topology comparison (pfail = 1/1000)\n");
    let mut table = Table::new(&[
        "k",
        "switches",
        "P[deliver]",
        "PNK",
        "PPNK(exact)",
        "PPNK(approx)",
        "baseline",
    ]);
    for k in ks {
        let bench = chain_benchmark(k, pfail.clone());
        let expect = chain_expected_delivery(k, &pfail);

        let mgr = Manager::new();
        let (p_native, t_native) = timed(|| {
            let fdd = mgr.compile(&bench.program).expect("native compile");
            mgr.prob_matching(fdd, &bench.input, &bench.accept)
        });
        assert_eq!(p_native, expect, "native answer mismatch at k={k}");

        let (auto, t_translate) = timed(|| translate(&bench.program).expect("translate"));
        let exact_cell = if k <= exact_cutoff {
            let (r, t) = timed(|| {
                check_reachability(&auto, &bench.input, &bench.accept, McMode::Exact)
                    .expect("exact mc")
            });
            assert_eq!(r.exact.as_ref(), Some(&expect));
            secs(t_translate + t)
        } else {
            "DNF".into()
        };
        let approx_cell = if k <= approx_cutoff {
            let (r, t) = timed(|| {
                check_reachability(&auto, &bench.input, &bench.accept, McMode::Approx)
                    .expect("approx mc")
            });
            assert!((r.probability - expect.to_f64()).abs() < 1e-6);
            secs(t_translate + t)
        } else {
            "DNF".into()
        };

        let baseline_cell = if k <= baseline_cutoff {
            let engine = mcnetkat_baseline::ExactInference::new(64 * k);
            let (r, t) = timed(|| engine.query(&bench.program, &bench.input, &bench.accept));
            assert!((r.probability.to_f64() - expect.to_f64()).abs() < 1e-9);
            secs(t)
        } else {
            "DNF".into()
        };

        table.row(vec![
            k.to_string(),
            (4 * k).to_string(),
            format!("{:.6}", expect.to_f64()),
            secs(t_native),
            exact_cell,
            approx_cell,
            baseline_cell,
        ]);
    }
    table.print();
}
