//! Perf profile of the FDD compile path: stage timings, node/distribution
//! counts, and per-cache hit rates for fattree(6) and fattree(8) with the
//! paper's f = 1/1000 independent failure model.
//!
//! This is the harness behind the ROADMAP's "profile the FDD compile
//! path" item: it splits a cold `NetworkModel::compile` into its stages
//! (AST assembly, loop-body FDD compilation, the absorbing-chain `while`
//! solve) and dumps `Manager::op_cache_stats()` so regressions in cache
//! effectiveness are visible, not just wall-clock drift.
//!
//! Output: human tables on stdout, plus a flat JSON dump of per-cache hit
//! rates (percent) to `BENCH_opcache.json` — `bench_compare` appends this
//! to its report when present. Override the path with
//! `MCNETKAT_OPCACHE_PATH`; set it to the empty string to disable.
//!
//! `MCNETKAT_SCALE=paper` adds fattree(10) to approach the paper's p=16+
//! ambitions; the default profile (6 and 8) finishes in ~1 s.

use mcnetkat_bench::{scale, secs, timed, Scale, Table};
use mcnetkat_fdd::{CompileOptions, Manager};
use mcnetkat_net::{FailureModel, NetworkModel, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_topo::fattree;

fn main() {
    let ps: &[usize] = match scale() {
        Scale::Small => &[6, 8],
        Scale::Paper => &[6, 8, 10],
    };
    println!("FDD compile-path profile (ECMP, f = 1/1000)\n");
    let mut stages = Table::new(&[
        "topology",
        "ast",
        "body fdd",
        "while solve",
        "cold total",
        "nodes",
        "dists",
        "dist entries",
    ]);
    let mut rates: Vec<(String, f64)> = Vec::new();
    let mut cache_rows: Vec<(String, Vec<String>)> = Vec::new();
    for &p in ps {
        let topo = fattree(p);
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(
            topo,
            dst,
            RoutingScheme::Ecmp,
            FailureModel::independent(Ratio::new(1, 1000)),
        );
        let opts = CompileOptions::default();

        // Stage timings in a dedicated manager so each stage is cold.
        let (ast, t_ast) = timed(|| (model.body(), model.guard()));
        let (body_prog, guard_pred) = ast;
        let stage_mgr = Manager::new();
        let (fbody, t_body) = timed(|| stage_mgr.compile_with(&body_prog, &opts).unwrap());
        let fguard = stage_mgr.compile_pred(&guard_pred);
        let (res, t_while) = timed(|| stage_mgr.while_loop(fguard, fbody, &opts));
        res.expect("while solve");
        // Free the stage manager before the end-to-end run so its tables
        // don't distort the cold measurement's allocator behaviour.
        drop(stage_mgr);

        // The end-to-end number: a cold full-model compile.
        let mgr = Manager::new();
        let (res, t_total) = timed(|| model.compile(&mgr));
        res.expect("cold compile");
        let (dists, entries, _max) = mgr.dist_table_stats();
        stages.row(vec![
            format!("fattree({p})"),
            secs(t_ast),
            secs(t_body),
            secs(t_while),
            secs(t_total),
            mgr.node_count().to_string(),
            dists.to_string(),
            entries.to_string(),
        ]);

        for c in mgr.op_cache_stats().caches {
            if c.lookups() == 0 {
                continue;
            }
            rates.push((format!("fattree{p}/{}", c.name), 100.0 * c.hit_rate()));
            cache_rows.push((
                format!("fattree({p})"),
                vec![
                    c.name.to_string(),
                    c.hits.to_string(),
                    c.misses.to_string(),
                    c.entries.to_string(),
                    format!("{:.1}%", 100.0 * c.hit_rate()),
                ],
            ));
        }
    }
    stages.print();

    println!("\nop-cache hit rates (cold full-model compile)");
    let mut caches = Table::new(&["topology", "cache", "hits", "misses", "entries", "hit rate"]);
    for (topo, row) in cache_rows {
        let mut cells = vec![topo];
        cells.extend(row);
        caches.row(cells);
    }
    caches.print();

    dump_rates(&rates);
}

/// Writes the hit rates as flat JSON (`{"label": percent, …}`), the same
/// shape as the criterion shim's `BENCH_results.json`, so `bench_compare`
/// can parse it with the machinery it already has.
fn dump_rates(rates: &[(String, f64)]) {
    let path =
        std::env::var("MCNETKAT_OPCACHE_PATH").unwrap_or_else(|_| "BENCH_opcache.json".to_string());
    if path.is_empty() {
        return;
    }
    let mut json = String::from("{\n");
    for (i, (label, rate)) in rates.iter().enumerate() {
        let sep = if i + 1 == rates.len() { "" } else { "," };
        json.push_str(&format!("  \"{label}\": {rate:.2}{sep}\n"));
    }
    json.push_str("}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {} op-cache hit rates to {path}", rates.len()),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
