//! Perf profile of the FDD compile path: fused-vs-legacy stage timings,
//! peak-size gauges, and per-cache hit rates for fattree(6) and fattree(8)
//! with the paper's f = 1/1000 independent failure model.
//!
//! This is the harness behind the ROADMAP's "profile the FDD compile
//! path" item, rebuilt around the fused per-switch pipeline: it times the
//! legacy whole-body compile (the old frontier) next to a cold fused
//! compile, and reports the gauges that prove the restructure — the main
//! manager's peak live nodes / distribution entries and the largest
//! per-switch scratch manager ([`mcnetkat_net::FusedStats`]).
//!
//! Output: human tables on stdout, plus a flat JSON dump of per-cache hit
//! rates (percent) to `crates/bench/BENCH_opcache.json` (the CWD when
//! not run from the workspace root) — `bench_compare` appends this to
//! its report when present. Override the path with
//! `MCNETKAT_OPCACHE_PATH`; set it to the empty string to disable.
//!
//! `MCNETKAT_SCALE=paper` adds fattree(10) and fattree(12) — scales the
//! legacy pipeline could not touch; the default profile finishes in ~1 s
//! (legacy comparison runs at p ≤ 8 only).
//!
//! `--order` sweeps the [`mcnetkat_net::FieldOrder`] interning policies
//! instead (each in its own field namespace, so one process can compare
//! all of them): with scratch fields eliminated per switch, variable
//! order is now a second-order effect, and the sweep shows it.

use mcnetkat_bench::{scale, secs, timed, Scale, Table};
use mcnetkat_fdd::{CompileOptions, Manager};
use mcnetkat_net::{FailureModel, FieldOrder, NetFields, NetworkModel, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_topo::fattree;

fn model_for(p: usize) -> NetworkModel {
    let topo = fattree(p);
    let dst = topo.find("edge0_0").unwrap();
    NetworkModel::new(
        topo,
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 1000)),
    )
}

// The audit guard is a runtime (not const) assert on purpose: `cargo
// test --features audit` builds this binary without running it, and must
// keep compiling.
#[allow(clippy::assertions_on_constants)]
fn main() {
    assert!(
        !mcnetkat_fdd::AUDIT_ENABLED,
        "the `audit` feature is enabled in a profiling build — timings \
         would include invariant audits; rebuild without it"
    );
    // Same for the fault-injection registry: armed-site checks sit on the
    // compile hot path and would skew every stage timing.
    assert!(
        !mcnetkat_fdd::FAILPOINTS_ENABLED,
        "the `failpoints` feature is enabled in a profiling build — \
         timings would include fault-injection checks; rebuild without it"
    );
    if std::env::args().any(|a| a == "--order") {
        order_sweep();
        return;
    }
    let ps: &[usize] = match scale() {
        Scale::Small => &[6, 8],
        Scale::Paper => &[6, 8, 10, 12],
    };
    println!("FDD compile-path profile (ECMP, f = 1/1000)\n");
    let mut stages = Table::new(&[
        "topology",
        "legacy body",
        "legacy total",
        "fused total",
        "speedup",
        "nodes",
        "dist entries",
        "scratch nodes",
    ]);
    let mut rates: Vec<(String, f64)> = Vec::new();
    let mut cache_rows: Vec<(String, Vec<String>)> = Vec::new();
    let mut solve_rows: Vec<Vec<String>> = Vec::new();
    for &p in ps {
        let model = model_for(p);
        let opts = CompileOptions::default();

        // The legacy whole-body path — the pre-fused frontier. Only at
        // p ≤ 8: beyond that it is exactly the blowup the fused pipeline
        // removes, and running it would dominate the profile.
        let (legacy_body, legacy_total) = if p <= 8 {
            let (ast, _) = timed(|| (model.body(), model.guard()));
            let (body_prog, _guard) = ast;
            let stage_mgr = Manager::new();
            let (res, t_body) = timed(|| stage_mgr.compile_with(&body_prog, &opts));
            res.expect("legacy body compile");
            drop(stage_mgr);
            let legacy_mgr = Manager::new();
            let (res, t_total) = timed(|| model.compile_legacy_with(&legacy_mgr, &opts));
            res.expect("legacy compile");
            (Some(t_body), Some(t_total))
        } else {
            (None, None)
        };

        // The fused pipeline: a cold full-model compile plus its gauges.
        let mgr = Manager::new();
        let (res, t_fused) = timed(|| model.compile_with_stats(&mgr, &opts));
        let (_fdd, fstats) = res.expect("fused compile");
        let speedup = legacy_total.map_or("—".to_string(), |t| format!("{:.1}×", t / t_fused));
        stages.row(vec![
            format!("fattree({p})"),
            legacy_body.map_or("—".into(), secs),
            legacy_total.map_or("—".into(), secs),
            secs(t_fused),
            speedup,
            mgr.peak_live_nodes().to_string(),
            mgr.peak_dist_entries().to_string(),
            fstats.max_scratch_nodes.to_string(),
        ]);

        // Loop-solver gauges: how much of the while-loop chains the
        // symmetry quotient and SCC condensation actually removed — and
        // whether any solve degraded down the fallback chain.
        let ls = mgr.loop_solve_stats();
        solve_rows.push(vec![
            format!("fattree({p})"),
            ls.solves.to_string(),
            ls.transient_states.to_string(),
            ls.lumped_blocks.to_string(),
            ls.sccs.to_string(),
            ls.max_transient.to_string(),
            if ls.transient_states > 0 {
                format!(
                    "{:.1}×",
                    ls.transient_states as f64 / (ls.lumped_blocks.max(1)) as f64
                )
            } else {
                "—".into()
            },
            ls.fallback_retries.to_string(),
            ls.dense_fallbacks.to_string(),
        ]);

        // Fallback counters ride in the op-cache dump as raw counts, so a
        // silent dense fallback shows up in BENCH_opcache.json (and trips
        // bench_compare's warning) instead of hiding as a slow success.
        rates.push((
            format!("fattree{p}/fallback_retries"),
            ls.fallback_retries as f64,
        ));
        rates.push((
            format!("fattree{p}/dense_fallbacks"),
            ls.dense_fallbacks as f64,
        ));

        for c in mgr.op_cache_stats().caches {
            if c.lookups() == 0 {
                continue;
            }
            rates.push((format!("fattree{p}/{}", c.name), 100.0 * c.hit_rate()));
            cache_rows.push((
                format!("fattree({p})"),
                vec![
                    c.name.to_string(),
                    c.hits.to_string(),
                    c.misses.to_string(),
                    c.entries.to_string(),
                    format!("{:.1}%", 100.0 * c.hit_rate()),
                ],
            ));
        }
    }
    stages.print();

    println!("\nloop-solver gauges (sparse SCC solve with symmetry lumping)");
    let mut solves = Table::new(&[
        "topology",
        "solves",
        "transient",
        "lumped blocks",
        "SCCs",
        "max transient",
        "collapse",
        "retries",
        "dense",
    ]);
    for row in solve_rows {
        solves.row(row);
    }
    solves.print();

    println!("\nop-cache hit rates (cold fused full-model compile)");
    let mut caches = Table::new(&["topology", "cache", "hits", "misses", "entries", "hit rate"]);
    for (topo, row) in cache_rows {
        let mut cells = vec![topo];
        cells.extend(row);
        caches.row(cells);
    }
    caches.print();

    dump_rates(&rates);
}

/// Sweeps the [`FieldOrder`] interning policies over fattree(6) and (8),
/// each policy in its own field namespace so the process-wide interner
/// cannot bleed one order into the next.
fn order_sweep() {
    println!("FieldOrder sweep (fused pipeline, ECMP, f = 1/1000)\n");
    let mut table = Table::new(&["topology", "order", "fused total", "nodes", "scratch nodes"]);
    for p in [6usize, 8] {
        let topo = fattree(p);
        let dst = topo.find("edge0_0").unwrap();
        for order in FieldOrder::all() {
            let ns = format!("ord_{}_{p}", order.name());
            let fields = NetFields::with_order_in(&ns, topo.max_degree(), 0, order);
            let model = NetworkModel::new_with_fields(
                topo.clone(),
                dst,
                fields,
                RoutingScheme::Ecmp,
                FailureModel::independent(Ratio::new(1, 1000)),
            );
            let mgr = Manager::new();
            let (res, t) = timed(|| model.compile_with_stats(&mgr, &CompileOptions::default()));
            let (_fdd, stats) = res.expect("fused compile");
            table.row(vec![
                format!("fattree({p})"),
                order.name().to_string(),
                secs(t),
                mgr.peak_live_nodes().to_string(),
                stats.max_scratch_nodes.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\n(orders only reshape the per-switch scratch diagrams now — the \
         global diagram never sees a scratch field)"
    );
}

/// Writes the hit rates (percent) and solver-fallback counters (raw
/// counts) as flat JSON (`{"label": number, …}`), the same shape as the
/// criterion shim's `BENCH_results.json`, so `bench_compare` can parse it
/// with the machinery it already has.
fn dump_rates(rates: &[(String, f64)]) {
    // Keep every benchmark artifact under `crates/bench/` when running
    // from the workspace root; fall back to the CWD elsewhere.
    let path = std::env::var("MCNETKAT_OPCACHE_PATH").unwrap_or_else(|_| {
        if std::path::Path::new("crates/bench").is_dir() {
            "crates/bench/BENCH_opcache.json".to_string()
        } else {
            "BENCH_opcache.json".to_string()
        }
    });
    if path.is_empty() {
        return;
    }
    let mut json = String::from("{\n");
    for (i, (label, rate)) in rates.iter().enumerate() {
        let sep = if i + 1 == rates.len() { "" } else { "," };
        json.push_str(&format!("  \"{label}\": {rate:.2}{sep}\n"));
    }
    json.push_str("}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {} op-cache hit rates to {path}", rates.len()),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
