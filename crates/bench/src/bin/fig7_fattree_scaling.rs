//! E2 / Figure 7 — scalability on FatTree data-center topologies.
//!
//! For a family of FatTrees with ECMP routing, measures the time to build
//! the stochastic-matrix (FDD) representation with the native backend and
//! with the PRISM-translation backend, with no failures (`#f=0`) and with
//! independent failures of probability 1/1000.
//!
//! The paper's shape: the native backend scales to thousands of switches;
//! failures cost extra; native beats the PRISM route throughout.

use mcnetkat_bench::{scale, secs, timed, Scale, Table};
use mcnetkat_fdd::Manager;
use mcnetkat_net::{FailureModel, NetworkModel, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_prism::{check_reachability, translate, McMode};
use mcnetkat_topo::fattree;

fn main() {
    let ps: Vec<usize> = match scale() {
        Scale::Small => vec![4, 6, 8],
        Scale::Paper => vec![4, 6, 8, 10, 12, 14, 16],
    };
    let mut table = Table::new(&[
        "p",
        "switches",
        "native(f=0)",
        "native(f=1/1000)",
        "prism(f=0)",
        "prism(f=1/1000)",
    ]);
    for p in ps {
        let topo = fattree(p);
        let nsw = topo.switches().len();
        let dst = topo.find("edge0_0").unwrap();
        let mut cells = vec![p.to_string(), nsw.to_string()];

        for failure in [
            FailureModel::none(),
            FailureModel::independent(Ratio::new(1, 1000)),
        ] {
            let model = NetworkModel::new(topo.clone(), dst, RoutingScheme::Ecmp, failure);
            let mgr = Manager::new();
            let (res, t) = timed(|| model.compile(&mgr));
            res.expect("native compile");
            cells.insert(cells.len(), secs(t));
        }
        // PRISM backend: translation is fast; the model-checking step
        // dominates (one reachability query from a representative source).
        for failure in [
            FailureModel::none(),
            FailureModel::independent(Ratio::new(1, 1000)),
        ] {
            let model = NetworkModel::new(topo.clone(), dst, RoutingScheme::Ecmp, failure);
            let prog = model.program();
            let src = model.ingresses()[0];
            let input =
                mcnetkat_core::Packet::new().with(model.fields.sw, model.topo.sw_value(src));
            let accept = mcnetkat_core::Pred::test(model.fields.sw, model.topo.sw_value(dst));
            let (res, t) = timed(|| {
                let auto = translate(&prog).expect("translate");
                check_reachability(&auto, &input, &accept, McMode::Approx)
            });
            res.expect("prism check");
            cells.push(secs(t));
        }
        table.row(cells);
    }
    println!("Figure 7 — FatTree scalability, ECMP routing");
    println!("(native = FDD compile; prism = translate + model-check one query)\n");
    table.print();
}
