//! Perf-regression gate: diffs a `cargo bench` median dump against a
//! checked-in baseline and warns on regressions.
//!
//! The criterion shim writes `BENCH_results.json` (flat JSON object,
//! benchmark label → median nanoseconds) after every `cargo bench` run.
//! This binary compares such a dump against `crates/bench/BENCH_baseline.json`
//! and reports every shared benchmark that regressed by more than the
//! threshold (default 15%). Benchmarks present on only one side are
//! reported but never count as regressions, so adding or retiring
//! benchmarks doesn't require a baseline refresh in the same change.
//!
//! By default the gate is **advisory**: regressions are printed but the
//! exit code stays zero (baselines are machine-specific, so foreign
//! hardware will drift). Pass `--fail-on-regress` to exit non-zero on any
//! regression — that is what the CI job and local pre-merge checks use.
//! Pass `--stable-only` to restrict the comparison to the benchmarks
//! whose medians are robust across machines (`solver_backends/*`,
//! `chain_engines/native_fdd`, and the two large fat-tree compiles that
//! depend on the sparse SCC loop solve staying sparse);
//! `--stable-only --fail-on-regress` is the *blocking* CI gate, while the
//! full set stays advisory.
//!
//! When a `BENCH_opcache.json` dump is present (written by the
//! `perf_profile` binary), the op-cache hit rates it contains are appended
//! to the report, so cache-effectiveness changes travel with the timing
//! diff. Likewise for `BENCH_serve.json` (written by `serve_bench`): its
//! metrics are diffed against `crates/bench/BENCH_serve_baseline.json`,
//! advisory only — keys ending in `_per_sec` or `_speedup_x` are
//! higher-is-better, everything else is nanoseconds, lower-is-better.
//! `--serve-only` reports just that diff (and exits 0), for the CI serve
//! job where no `cargo bench` dump exists.
//!
//! ```text
//! cargo bench -p mcnetkat-bench
//! cargo run -p mcnetkat-bench --bin bench_compare -- --fail-on-regress
//! # custom paths / threshold:
//! cargo run -p mcnetkat-bench --bin bench_compare -- current.json base.json 20
//! ```
//!
//! Refresh the baseline with `--update-baseline`: it rewrites
//! `crates/bench/BENCH_baseline.json` in place from the fresh
//! `BENCH_results.json` (and say so in the PR — baselines are
//! machine-specific, so refresh on the reference container).

use mcnetkat_bench::Table;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Benchmarks whose medians are robust across machines — the blocking
/// subset behind `--stable-only`. The two large fat-tree compiles ride on
/// the sparse SCC loop solve; they are in the blocking set so a dense
/// solve sneaking back in (a 10×+ cliff, far beyond machine noise) fails
/// the gate rather than drowning in the advisory report.
const STABLE_PREFIXES: &[&str] = &[
    "solver_backends/",
    "chain_engines/native_fdd",
    "fattree_compile/f1000/16",
    "fattree_srlg/linecard1000/12",
];

// The audit guard asserts on a feature-dependent constant on purpose: a
// const assert would instead break `cargo test --features audit`, where
// building this binary (without running it) is fine.
#[allow(clippy::assertions_on_constants)]
fn main() -> ExitCode {
    // The diagram auditor adds a full node/interning-table walk to every
    // model compile — numbers taken with it on are not comparable to the
    // baseline. Feature unification is the usual culprit (some crate in
    // the build turning `audit` on for everyone), so fail loudly.
    assert!(
        !mcnetkat_fdd::AUDIT_ENABLED,
        "the `audit` feature is enabled in a benchmark build — timings \
         would include invariant audits; rebuild without it"
    );
    // Same story for the fault-injection registry: an armed-site check on
    // the compile hot path would skew every number it touches.
    assert!(
        !mcnetkat_fdd::FAILPOINTS_ENABLED,
        "the `failpoints` feature is enabled in a benchmark build — \
         timings would include fault-injection checks; rebuild without it"
    );
    let mut fail_on_regress = false;
    let mut update_baseline = false;
    let mut stable_only = false;
    let mut serve_only = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| match a.as_str() {
            "--fail-on-regress" => {
                fail_on_regress = true;
                false
            }
            "--update-baseline" => {
                update_baseline = true;
                false
            }
            "--stable-only" => {
                stable_only = true;
                false
            }
            "--serve-only" => {
                serve_only = true;
                false
            }
            _ => true,
        })
        .collect();
    let threshold_default = 15.0;
    if serve_only {
        // The CI serve job's advisory diff: only the serve_bench dump is
        // present there, so skip the cargo-bench comparison entirely.
        let threshold_pct: f64 = args.first().map_or(threshold_default, |s| {
            s.parse().expect("threshold must be a number (percent)")
        });
        report_serve_diff(threshold_pct);
        return ExitCode::SUCCESS;
    }
    // `cargo bench` writes the dump with the *package* directory as CWD,
    // while this binary usually runs from the workspace root — accept the
    // default file names from either location.
    let current_path = args.first().map(String::as_str).map_or_else(
        || first_existing(&["BENCH_results.json", "crates/bench/BENCH_results.json"]),
        str::to_string,
    );
    let current_path = current_path.as_str();
    let baseline_path = args.get(1).map(String::as_str).map_or_else(
        || first_existing(&["crates/bench/BENCH_baseline.json", "BENCH_baseline.json"]),
        str::to_string,
    );
    let baseline_path = baseline_path.as_str();
    let threshold_pct: f64 = args.get(2).map_or(threshold_default, |s| {
        s.parse().expect("threshold must be a number (percent)")
    });

    let mut current = match load(current_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {current_path}: {e}");
            eprintln!("hint: run `cargo bench -p mcnetkat-bench` first");
            return ExitCode::FAILURE;
        }
    };

    if update_baseline {
        if stable_only {
            // Rewriting only a subset would silently drop every other
            // benchmark from the baseline; make the caller choose.
            eprintln!("error: --update-baseline cannot be combined with --stable-only");
            return ExitCode::FAILURE;
        }
        return match write_baseline(baseline_path, &current) {
            Ok(()) => {
                println!(
                    "rewrote {baseline_path} from {current_path} ({} benchmarks)",
                    current.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: could not write {baseline_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut baseline = match load(baseline_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if stable_only {
        let stable = |n: &str| STABLE_PREFIXES.iter().any(|p| n.starts_with(p));
        current.retain(|n, _| stable(n));
        baseline.retain(|n, _| stable(n));
        println!("stable subset only: {STABLE_PREFIXES:?}");
    }

    println!("comparing {current_path} against {baseline_path} (threshold {threshold_pct}%)\n");
    let mut table = Table::new(&["benchmark", "baseline", "current", "delta", "verdict"]);
    let mut regressions = 0usize;
    for (name, &base_ns) in &baseline {
        let Some(&cur_ns) = current.get(name) else {
            table.row(vec![
                name.clone(),
                fmt_ns(base_ns),
                "—".into(),
                "—".into(),
                "missing".into(),
            ]);
            continue;
        };
        let delta_pct = (cur_ns - base_ns) / base_ns * 100.0;
        let verdict = if delta_pct > threshold_pct {
            regressions += 1;
            "REGRESSED"
        } else if delta_pct < -threshold_pct {
            "improved"
        } else {
            "ok"
        };
        table.row(vec![
            name.clone(),
            fmt_ns(base_ns),
            fmt_ns(cur_ns),
            format!("{delta_pct:+.1}%"),
            verdict.into(),
        ]);
    }
    for name in current.keys().filter(|n| !baseline.contains_key(*n)) {
        table.row(vec![
            name.clone(),
            "—".into(),
            fmt_ns(current[name]),
            "—".into(),
            "new".into(),
        ]);
    }
    table.print();
    report_opcache_rates();
    report_serve_diff(threshold_pct);

    if regressions > 0 {
        eprintln!("\nwarning: {regressions} benchmark(s) regressed by more than {threshold_pct}%");
        if fail_on_regress {
            ExitCode::FAILURE
        } else {
            eprintln!("(advisory mode: exiting 0; pass --fail-on-regress to gate)");
            ExitCode::SUCCESS
        }
    } else {
        println!("\nno regressions beyond {threshold_pct}%");
        ExitCode::SUCCESS
    }
}

/// Rewrites the baseline file from a fresh results map, in the same flat
/// JSON shape the criterion shim dumps (integer nanoseconds where the
/// median is integral, so a round-tripped baseline diffs cleanly).
fn write_baseline(path: &str, results: &BTreeMap<String, f64>) -> Result<(), String> {
    let mut json = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        if ns.fract() == 0.0 {
            json.push_str(&format!("  \"{name}\": {ns:.0}{sep}\n"));
        } else {
            json.push_str(&format!("  \"{name}\": {ns}{sep}\n"));
        }
    }
    json.push_str("}\n");
    std::fs::write(path, json).map_err(|e| e.to_string())
}

/// Prints the op-cache hit rates dumped by `perf_profile`, when present.
/// Missing dumps are fine — the rates are context for the timing diff,
/// not part of the gate.
fn report_opcache_rates() {
    let path = first_existing(&["BENCH_opcache.json", "crates/bench/BENCH_opcache.json"]);
    let Ok(rates) = load(&path) else {
        return;
    };
    println!("\nop-cache hit rates ({path}):");
    let mut table = Table::new(&["cache", "hit rate"]);
    let mut dense_fallbacks = 0u64;
    for (name, rate) in &rates {
        // The solver fallback counters ride in the same dump as raw
        // counts, not percentages (see perf_profile).
        if name.ends_with("/fallback_retries") || name.ends_with("/dense_fallbacks") {
            table.row(vec![name.clone(), format!("{rate:.0}")]);
            if name.ends_with("/dense_fallbacks") {
                dense_fallbacks += *rate as u64;
            }
            continue;
        }
        table.row(vec![name.clone(), format!("{rate:.1}%")]);
    }
    table.print();
    if dense_fallbacks > 0 {
        eprintln!(
            "\nwarning: {dense_fallbacks} loop solve(s) fell back to the dense \
             exact reference — the sparse SCC solver is silently degrading \
             (see `Manager::solve_report()` for the event log)"
        );
    }
}

/// Diffs the `serve_bench` dump against its checked-in baseline, when
/// both exist. Always advisory: the serve numbers mix latencies with
/// rates, and the steady-state figures are the most machine-sensitive in
/// the suite — the blocking serve gate in CI is the incremental-vs-cold
/// equivalence check, not these timings.
fn report_serve_diff(threshold_pct: f64) {
    let current_path = first_existing(&["crates/bench/BENCH_serve.json", "BENCH_serve.json"]);
    let Ok(current) = load(&current_path) else {
        return;
    };
    let baseline_path = first_existing(&[
        "crates/bench/BENCH_serve_baseline.json",
        "BENCH_serve_baseline.json",
    ]);
    let Ok(baseline) = load(&baseline_path) else {
        println!("\nserve metrics ({current_path}; no baseline to diff):");
        let mut table = Table::new(&["metric", "value"]);
        for (name, v) in &current {
            table.row(vec![name.clone(), fmt_serve(name, *v)]);
        }
        table.print();
        return;
    };
    println!("\nserve engine diff ({current_path} vs {baseline_path}, advisory):");
    let mut table = Table::new(&["metric", "baseline", "current", "delta", "verdict"]);
    for (name, &base) in &baseline {
        let Some(&cur) = current.get(name) else {
            table.row(vec![
                name.clone(),
                fmt_serve(name, base),
                "—".into(),
                "—".into(),
                "missing".into(),
            ]);
            continue;
        };
        if base == 0.0 {
            // No meaningful relative delta against a zero baseline (e.g. a
            // 0 ns latency from a degenerate smoke run).
            table.row(vec![
                name.clone(),
                fmt_serve(name, base),
                fmt_serve(name, cur),
                "—".into(),
                "n/a".into(),
            ]);
            continue;
        }
        let delta_pct = (cur - base) / base * 100.0;
        // Throughput and speedup improve upward; latencies downward.
        let worsened = if higher_is_better(name) {
            -delta_pct
        } else {
            delta_pct
        };
        let verdict = if worsened > threshold_pct {
            "regressed"
        } else if worsened < -threshold_pct {
            "improved"
        } else {
            "ok"
        };
        table.row(vec![
            name.clone(),
            fmt_serve(name, base),
            fmt_serve(name, cur),
            format!("{delta_pct:+.1}%"),
            verdict.into(),
        ]);
    }
    for name in current.keys().filter(|n| !baseline.contains_key(*n)) {
        table.row(vec![
            name.clone(),
            "—".into(),
            fmt_serve(name, current[name]),
            "—".into(),
            "new".into(),
        ]);
    }
    table.print();
}

fn higher_is_better(name: &str) -> bool {
    name.ends_with("_per_sec") || name.ends_with("_speedup_x")
}

fn fmt_serve(name: &str, v: f64) -> String {
    if name.ends_with("_ns") {
        fmt_ns(v)
    } else if name.ends_with("_per_sec") {
        format!("{v:.0}/s")
    } else if name.ends_with("_speedup_x") {
        format!("{v:.1}x")
    } else {
        format!("{v:.2}")
    }
}

/// The most recently modified candidate that exists on disk, else the
/// first candidate (so the error message names the preferred location).
/// Mtime ordering matters: a stale dump at one location must not shadow a
/// fresh one at the other.
fn first_existing(candidates: &[&str]) -> String {
    let existing: Vec<&&str> = candidates
        .iter()
        .filter(|p| std::path::Path::new(p).exists())
        .collect();
    if existing.len() > 1 {
        eprintln!("note: multiple candidates exist ({existing:?}); using the newest");
    }
    existing
        .into_iter()
        .max_by_key(|p| {
            std::fs::metadata(p)
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH)
        })
        .unwrap_or(&candidates[0])
        .to_string()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_flat_json(&text)
}

/// Parses the shim's dump format: one flat JSON object mapping string
/// keys to numbers. Not a general JSON parser — nested values are
/// rejected — but accepts any whitespace layout.
fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut map = BTreeMap::new();
    let mut chars = text.chars().peekable();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        return Ok(map);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = parse_number(&mut chars)?;
        map.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return Ok(map),
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, found {other:?}")),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some(c @ ('"' | '\\' | '/')) => out.push(c),
                other => return Err(format!("unsupported escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_number(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<f64, String> {
    let mut lit = String::new();
    while chars
        .peek()
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        lit.push(chars.next().unwrap());
    }
    lit.parse().map_err(|e| format!("bad number {lit:?}: {e}"))
}
