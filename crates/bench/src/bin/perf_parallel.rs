//! Perf harness for the parallel backend: compiles fattree(p)+f1/1000
//! at several worker counts and reports wall-clock times plus the
//! `while`-loop cache hit rate. Used to produce the before/after evidence
//! for merge/loop-pipeline PRs.
//!
//! `MCNETKAT_SCALE=paper` adds fattree(8); the default stops at
//! fattree(6) so the harness finishes in seconds.

use mcnetkat_bench::{scale, secs, timed, Scale, Table};
use mcnetkat_fdd::Manager;
use mcnetkat_net::{compile_model_parallel, FailureModel, NetworkModel, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_topo::fattree;

fn main() {
    let ps: &[usize] = match scale() {
        Scale::Small => &[6],
        Scale::Paper => &[6, 8],
    };
    let ncpu = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("parallel-backend perf (f = 1/1000, {ncpu} cores)\n");
    let mut table = Table::new(&["topology", "workers", "time", "speedup"]);
    for &p in ps {
        let topo = fattree(p);
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(
            topo,
            dst,
            RoutingScheme::Ecmp,
            FailureModel::independent(Ratio::new(1, 1000)),
        );
        let mut base = None;
        for w in [1usize, 2, 4] {
            let mgr = Manager::new();
            let (res, t) = timed(|| compile_model_parallel(&mgr, &model, w, &Default::default()));
            res.expect("parallel compile");
            let baseline = *base.get_or_insert(t);
            table.row(vec![
                format!("fattree({p})"),
                w.to_string(),
                secs(t),
                format!("{:.2}x", baseline / t),
            ]);
            // A second compile of the same model in the same manager hits
            // the `while`-solution cache (among others): the loop solve —
            // the sequential tail's dominant cost — is skipped entirely.
            if w == 4 {
                let (res, t2) =
                    timed(|| compile_model_parallel(&mgr, &model, w, &Default::default()));
                res.expect("parallel recompile");
                let stats = mgr.while_cache_stats();
                table.row(vec![
                    format!("fattree({p})"),
                    format!("{w} (recompile)"),
                    secs(t2),
                    format!("{:.2}x ({}h/{}m)", baseline / t2, stats.hits, stats.misses),
                ]);
            }
        }
    }
    table.print();
}
