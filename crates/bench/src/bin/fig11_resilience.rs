//! E5+E6 / Figure 11 (b) and (c) — k-resilience of the F10 schemes on the
//! AB FatTree, and the refinement order between them.
//!
//! Expected (paper Figure 11b): F10₀ is 0-resilient, F10₃ is 2-resilient,
//! F10₃,₅ is 3-resilient. Figure 11c: refinement becomes strict exactly
//! when the weaker scheme stops being fully resilient.

use mcnetkat_bench::Table;
use mcnetkat_fdd::Manager;
use mcnetkat_net::{FailureModel, NetworkModel, Queries, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_topo::ab_fattree;

fn main() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let pr = Ratio::new(1, 100);
    let ks: Vec<Option<u32>> = vec![Some(0), Some(1), Some(2), Some(3), Some(4), None];
    let schemes = [
        RoutingScheme::Ecmp,
        RoutingScheme::F10_3,
        RoutingScheme::F10_3_5,
    ];

    println!("Figure 11(b) — k-resilience: M̂(scheme, f_k) ≡ teleport?\n");
    let mut table = Table::new(&["k", "F10_0", "F10_3", "F10_3,5"]);
    for k in &ks {
        let mut row = vec![k.map_or("∞".into(), |k| k.to_string())];
        for scheme in schemes {
            let failure = match k {
                Some(k) => FailureModel::bounded(pr.clone(), *k),
                None => FailureModel::independent(pr.clone()),
            };
            let model = NetworkModel::new(topo.clone(), dst, scheme, failure);
            let mgr = Manager::new();
            let q = Queries::new(&mgr, &model).expect("compile");
            let resilient = q.equiv_teleport_within(1e-9).expect("teleport");
            row.push(if resilient { "✓" } else { "✗" }.into());
        }
        table.row(row);
    }
    table.print();

    println!("\nFigure 11(c) — refinement under f_k (≡ equivalent, < strict)\n");
    let mut table = Table::new(&[
        "k",
        "F10_0 vs F10_3",
        "F10_3 vs F10_3,5",
        "F10_3,5 vs teleport",
    ]);
    for k in &ks {
        let failure = match k {
            Some(k) => FailureModel::bounded(pr.clone(), *k),
            None => FailureModel::independent(pr.clone()),
        };
        let mgr = Manager::new();
        let models: Vec<NetworkModel> = schemes
            .iter()
            .map(|&s| NetworkModel::new(topo.clone(), dst, s, failure.clone()))
            .collect();
        let queries: Vec<Queries> = models
            .iter()
            .map(|m| Queries::new(&mgr, m).expect("compile"))
            .collect();
        let rel = |a: &Queries, b: &Queries| {
            if a.refines_within(b, 1e-9) && b.refines_within(a, 1e-9) {
                "≡"
            } else if a.refines_within(b, 1e-9) {
                "<"
            } else {
                "?"
            }
        };
        let tele_fdd = mgr.compile(&models[2].teleport()).expect("teleport");
        let t35 = if mgr.equiv_within(queries[2].fdd(), tele_fdd, 1e-9) {
            "≡"
        } else if mgr.less_eq_within(queries[2].fdd(), tele_fdd, 1e-9) {
            "<"
        } else {
            "?"
        };
        table.row(vec![
            k.map_or("∞".into(), |k| k.to_string()),
            rel(&queries[0], &queries[1]).into(),
            rel(&queries[1], &queries[2]).into(),
            t35.into(),
        ]);
    }
    table.print();
}
