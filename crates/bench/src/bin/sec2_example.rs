//! E1 — the §2 running example: verifies every claim the overview section
//! makes, including the 80% / 96% delivery probabilities under `f2`.

use mcnetkat_bench::Table;
use mcnetkat_fdd::Manager;
use mcnetkat_net::running_example;

fn main() {
    let ex = running_example();
    let mgr = Manager::new();
    let tele = mgr.compile(&ex.teleport()).expect("teleport compiles");
    let pk = ex.ingress_packet();

    let mut table = Table::new(&["model", "≡ teleport", "P[delivery]"]);
    for (name, policy, failure) in [
        ("M(p, t, f0)", &ex.naive, &ex.f0),
        ("M(p̂, t̂, f0)", &ex.resilient, &ex.f0),
        ("M(p, t̂, f1)", &ex.naive, &ex.f1),
        ("M(p̂, t̂, f1)", &ex.resilient, &ex.f1),
        ("M(p, t̂, f2)", &ex.naive, &ex.f2),
        ("M(p̂, t̂, f2)", &ex.resilient, &ex.f2),
    ] {
        let fdd = mgr.compile(&ex.model(policy, failure)).expect("compiles");
        let equiv = mgr.equiv(fdd, tele);
        let p = mgr.prob_delivery(fdd, &pk);
        table.row(vec![
            name.into(),
            if equiv { "✓" } else { "✗" }.into(),
            format!("{p} = {:.4}", p.to_f64()),
        ]);
    }
    println!("§2 running example (paper: naive 80%, resilient 96% under f2)\n");
    table.print();

    // Refinement chain under f2.
    let naive = mgr.compile(&ex.model(&ex.naive, &ex.f2)).unwrap();
    let resil = mgr.compile(&ex.model(&ex.resilient, &ex.f2)).unwrap();
    println!(
        "\nrefinement:  M(p,t̂,f2) < M(p̂,t̂,f2): {}",
        mgr.less(naive, resil)
    );
    println!(
        "             M(p̂,t̂,f2) < teleport:  {}",
        mgr.less(resil, tele)
    );
}
