//! Workload harness for the incremental service engine (`mcnetkat-serve`):
//! a synthetic update/query mix over fat-trees, measuring what a
//! long-lived verification service actually feels like — steady-state
//! patch latency against the cold-compile floor, query throughput, and
//! tail latencies.
//!
//! The workload has three phases per topology:
//!
//! 1. **Cold load** — one from-scratch compile through the engine (the
//!    baseline every patch is measured against).
//! 2. **Warmup** — a configuration *flap set* (single-switch scheme edits
//!    and link-probability changes) is applied once in each direction, so
//!    both sides of every flap have warm per-switch diagrams and
//!    `while`-loop solutions. This is the operating regime of a
//!    long-lived engine: churn revisits configurations far more often
//!    than it invents new ones.
//! 3. **Steady state** — deltas cycle through the warm flap set, each
//!    followed by a batch of delivery queries; patch and query latencies
//!    are recorded.
//!
//! Output: a human table on stdout plus a flat JSON dump
//! (`crates/bench/BENCH_serve.json`, same shape as the criterion shim's)
//! with `serve/<topo>/…` keys — `bench_compare` diffs it against
//! `BENCH_serve_baseline.json` when present. Override the path with
//! `MCNETKAT_SERVE_BENCH_PATH`; set it empty to disable the dump.
//!
//! `--smoke` is the CI profile: a smaller topology and fresh-delta count,
//! plus a **blocking** differential check — after every single delta the
//! patched diagram is verified `equiv` to a cold compile of the current
//! model. `MCNETKAT_SCALE=paper` adds fattree(10).
//!
//! `--recovery` adds the durability phase: a journaled engine takes a
//! 100-delta churn log, the process "dies" (the engine is dropped), and
//! the phase times [`Engine::recover`] replaying the log — the
//! `recovery_replay_ns` the serve README's snapshot-cadence advice is
//! based on — plus an overload probe (two query batches racing a
//! one-permit admission gate) whose shed rate lands in the same dump.

use mcnetkat_bench::{secs, timed, Scale, Table};
use mcnetkat_net::{FailureModel, NetworkModel, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_serve::{Delta, Engine, EngineConfig, EngineError, ModelId, Query, QueryRequest};
use mcnetkat_topo::{fattree, NodeId};

// Runtime asserts on purpose — `cargo test --features audit` builds this
// binary without running it, and must keep compiling.
#[allow(clippy::assertions_on_constants)]
fn main() {
    assert!(
        !mcnetkat_fdd::AUDIT_ENABLED,
        "the `audit` feature is enabled in a benchmark build — timings \
         would include invariant audits; rebuild without it"
    );
    assert!(
        !mcnetkat_fdd::FAILPOINTS_ENABLED,
        "the `failpoints` feature is enabled in a benchmark build — \
         timings would include fault-injection checks; rebuild without it"
    );
    let smoke = std::env::args().any(|a| a == "--smoke");
    let recovery = std::env::args().any(|a| a == "--recovery");
    let ports: &[usize] = if smoke {
        &[4]
    } else {
        match mcnetkat_bench::scale() {
            Scale::Small => &[8],
            Scale::Paper => &[8, 10],
        }
    };
    let mut dump: Vec<(String, f64)> = Vec::new();
    for &p in ports {
        run_workload(p, smoke, &mut dump);
    }
    if recovery {
        run_recovery(if smoke { 4 } else { 8 }, &mut dump);
        run_overload(&mut dump);
    }
    write_dump(&dump);
    if smoke {
        println!("smoke profile: every delta verified against a cold compile — OK");
    }
}

fn model_for(p: usize) -> NetworkModel {
    let topo = fattree(p);
    let dst = topo.find("edge0_0").unwrap();
    NetworkModel::new(
        topo,
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 1000)),
    )
}

/// The churn set: alternating single-switch scheme flaps on a few core
/// and aggregation switches, plus a link-probability flap on one prone
/// port. Each entry is (apply, revert) — cycling applies one direction
/// per steady-state step.
fn flap_set(model: &NetworkModel) -> Vec<(Delta, Delta)> {
    let find = |name: &str| model.topo.find(name);
    let mut flaps: Vec<(Delta, Delta)> = Vec::new();
    let scheme_flap = |s: NodeId| {
        (
            Delta::SetSwitchScheme(s, RoutingScheme::F10_3),
            Delta::ClearSwitchScheme(s),
        )
    };
    for name in ["core0", "core1", "agg0_0", "agg1_0"] {
        if let Some(s) = find(name) {
            flaps.push(scheme_flap(s));
        }
    }
    if let Some(&port) = model
        .topo
        .switches()
        .iter()
        .flat_map(|&s| model.prone_ports(s))
        .collect::<Vec<_>>()
        .first()
    {
        flaps.push((
            Delta::SetLinkPr(port, Ratio::new(1, 10)),
            Delta::ClearLinkPr(port),
        ));
    }
    flaps
}

fn run_workload(p: usize, smoke: bool, dump: &mut Vec<(String, f64)>) {
    let label = format!("fattree{p}");
    println!("== serve workload: fattree({p}) ==");
    let mut engine = Engine::default();

    // Phase 1: cold load.
    let model = model_for(p);
    let (id, cold_s) = timed(|| engine.load(model).expect("cold load failed"));
    println!("cold load: {}", secs(cold_s));

    // Phase 2: warm both sides of every flap (and, in smoke mode, verify
    // each patch against a cold compile — the CI equivalence gate).
    let flaps = flap_set(engine.model(id).unwrap());
    let fresh_deltas = flaps.len() * 2;
    let mut fresh_patch_ns: Vec<u64> = Vec::new();
    for (apply, revert) in &flaps {
        for d in [apply, revert] {
            let report = engine.apply(id, d.clone()).expect("warmup delta failed");
            fresh_patch_ns.push(duration_ns(report.elapsed));
            verify(&engine, id, smoke, d);
        }
    }

    // Phase 3: steady state — cycle the warm flap set, a query batch
    // after every delta.
    let steps = if smoke {
        fresh_deltas
    } else {
        fresh_deltas * 4
    };
    let srcs = query_mix(engine.model(id).unwrap());
    engine.reset_latencies();
    let mut patch_ns: Vec<u64> = Vec::new();
    let mut recompiled = 0u64;
    let mut queries = 0usize;
    let mut query_secs = 0.0f64;
    for step in 0..steps {
        let (apply, revert) = &flaps[step % flaps.len()];
        let d = if (step / flaps.len()).is_multiple_of(2) {
            apply
        } else {
            revert
        };
        let report = engine.apply(id, d.clone()).expect("steady delta failed");
        patch_ns.push(duration_ns(report.elapsed));
        recompiled += report.switches_recompiled as u64;
        verify(&engine, id, smoke, d);

        let reqs: Vec<QueryRequest> = srcs
            .iter()
            .map(|&src| Query::DeliveryProb { model: id, src }.into())
            .collect();
        let (answers, qs) = timed(|| engine.query_batch(&reqs));
        assert!(answers.iter().all(Result::is_ok), "query failed");
        queries += answers.len();
        query_secs += qs;
    }

    // Report.
    let stats = engine.stats();
    patch_ns.sort_unstable();
    fresh_patch_ns.sort_unstable();
    let cold_ns = cold_s * 1e9;
    let patch_p50 = percentile(&patch_ns, 50.0);
    let patch_p99 = percentile(&patch_ns, 99.0);
    let speedup = cold_ns / patch_p50 as f64;
    let throughput = queries as f64 / query_secs;
    let mut table = Table::new(&["metric", "value"]);
    table.row(vec!["cold compile".into(), secs(cold_s)]);
    table.row(vec![
        "fresh patch p50 (unwarmed delta)".into(),
        fmt_ns(percentile(&fresh_patch_ns, 50.0)),
    ]);
    table.row(vec!["steady patch p50".into(), fmt_ns(patch_p50)]);
    table.row(vec!["steady patch p99".into(), fmt_ns(patch_p99)]);
    table.row(vec![
        "patch speedup vs cold".into(),
        format!("{speedup:.1}x"),
    ]);
    table.row(vec![
        "switches recompiled / delta".into(),
        format!("{:.2}", recompiled as f64 / steps as f64),
    ]);
    table.row(vec!["query p50".into(), fmt_ns(stats.query_p50_ns)]);
    table.row(vec!["query p99".into(), fmt_ns(stats.query_p99_ns)]);
    table.row(vec![
        "query throughput".into(),
        format!("{throughput:.0}/s"),
    ]);
    table.row(vec![
        "while-cache hits".into(),
        format!("{}", stats.while_cache.hits),
    ]);
    table.row(vec![
        "op-cache evictions".into(),
        format!("{}", stats.op_cache_evictions),
    ]);
    table.print();
    println!();

    let key = |m: &str| format!("serve/{label}/{m}");
    dump.push((key("cold_compile_ns"), cold_ns));
    dump.push((
        key("fresh_patch_p50_ns"),
        percentile(&fresh_patch_ns, 50.0) as f64,
    ));
    dump.push((key("delta_patch_p50_ns"), patch_p50 as f64));
    dump.push((key("delta_patch_p99_ns"), patch_p99 as f64));
    dump.push((key("patch_speedup_x"), speedup));
    dump.push((
        key("switches_recompiled_per_delta"),
        recompiled as f64 / steps as f64,
    ));
    dump.push((key("query_p50_ns"), stats.query_p50_ns as f64));
    dump.push((key("query_p99_ns"), stats.query_p99_ns as f64));
    dump.push((key("query_throughput_per_sec"), throughput));
}

/// The `--recovery` phase: journal a 100-delta churn log (cycling the
/// flap set, so it is the same workload the steady-state phase measures),
/// drop the engine, and time [`Engine::recover`] replaying it — which
/// includes recovery's built-in cold re-verification of every model, the
/// price of a trustworthy restart.
fn run_recovery(p: usize, dump: &mut Vec<(String, f64)>) {
    const DELTAS: usize = 100;
    let label = format!("fattree{p}");
    println!("== serve recovery: fattree({p}), {DELTAS}-delta journal ==");
    let dir = std::env::temp_dir().join(format!(
        "mcnetkat-serve-bench-recovery-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut engine =
        Engine::with_journal(EngineConfig::default(), &dir).expect("journal dir unwritable");
    let id = engine.load(model_for(p)).expect("cold load failed");
    let flaps = flap_set(engine.model(id).unwrap());
    for step in 0..DELTAS {
        let (apply, revert) = &flaps[step % flaps.len()];
        let d = if (step / flaps.len()).is_multiple_of(2) {
            apply
        } else {
            revert
        };
        engine.apply(id, d.clone()).expect("journaled delta failed");
    }
    let journal_bytes = engine.stats().journal_bytes;
    drop(engine); // the "crash"

    let ((_, report), replay_s) =
        timed(|| Engine::recover(EngineConfig::default(), &dir).expect("recovery failed"));
    assert_eq!(
        report.records_replayed,
        DELTAS as u64 + 1,
        "load + every committed delta"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let mut table = Table::new(&["metric", "value"]);
    table.row(vec!["journal size".into(), format!("{journal_bytes}B")]);
    table.row(vec![
        "records replayed".into(),
        format!("{}", report.records_replayed),
    ]);
    table.row(vec!["recovery replay".into(), secs(replay_s)]);
    table.print();
    println!();
    let key = |m: &str| format!("serve/{label}/{m}");
    dump.push((key("recovery_replay_ns"), replay_s * 1e9));
    dump.push((key("recovery_records"), report.records_replayed as f64));
    dump.push((key("recovery_journal_bytes"), journal_bytes as f64));
}

/// The overload probe: two query batches race a one-permit admission
/// gate. Sheds come only from cross-batch contention (each batch's own
/// fan-out is capped at the gate), so the rate is the advisory gauge of
/// how hard the gate bites — the accounting invariant (every request
/// answers or sheds, exactly counted) is asserted here and gated in the
/// serve test suite.
fn run_overload(dump: &mut Vec<(String, f64)>) {
    const BATCH: usize = 64;
    println!("== serve overload: 2 batches × {BATCH} queries, 1 permit ==");
    let config = EngineConfig {
        max_concurrent_queries: Some(1),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(config);
    let id = engine.load(model_for(4)).expect("cold load failed");
    let reqs: Vec<QueryRequest> = (0..BATCH)
        .map(|_| Query::MinDelivery { model: id }.into())
        .collect();
    let (r1, r2) = std::thread::scope(|scope| {
        let h1 = scope.spawn(|| engine.query_batch(&reqs));
        let h2 = scope.spawn(|| engine.query_batch(&reqs));
        (h1.join().unwrap(), h2.join().unwrap())
    });
    assert!(
        r1.iter()
            .chain(r2.iter())
            .all(|r| matches!(r, Ok(_) | Err(EngineError::Overloaded { .. }))),
        "every request must answer or shed"
    );
    let shed = engine.stats().queries_shed;
    let rate = shed as f64 / (2 * BATCH) as f64;
    println!("shed {shed}/{} ({:.0}%)\n", 2 * BATCH, rate * 100.0);
    dump.push(("serve/overload/queries_shed".into(), shed as f64));
    dump.push(("serve/overload/shed_rate".into(), rate));
}

/// In smoke mode, the blocking differential gate: the patched diagram
/// must be `equiv` to a cold compile of the current model.
fn verify(engine: &Engine, id: ModelId, smoke: bool, d: &Delta) {
    if smoke {
        assert!(
            engine.verify_against_cold(id).expect("cold verify failed"),
            "incremental ≢ cold after {d:?}"
        );
    }
}

/// A handful of ingresses spread across pods — the per-delta query batch.
fn query_mix(model: &NetworkModel) -> Vec<NodeId> {
    let mut srcs = model.ingresses();
    srcs.retain(|&s| s != model.dst);
    let stride = (srcs.len() / 6).max(1);
    srcs.into_iter().step_by(stride).take(6).collect()
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Nearest-rank percentile of a sorted sample set.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Writes the flat JSON dump `bench_compare` understands. The default
/// path keeps every benchmark artifact under `crates/bench/` when run
/// from the workspace root, and falls back to the CWD elsewhere.
fn write_dump(dump: &[(String, f64)]) {
    let path = std::env::var("MCNETKAT_SERVE_BENCH_PATH").unwrap_or_else(|_| {
        if std::path::Path::new("crates/bench").is_dir() {
            "crates/bench/BENCH_serve.json".to_string()
        } else {
            "BENCH_serve.json".to_string()
        }
    });
    if path.is_empty() {
        return;
    }
    let mut json = String::from("{\n");
    for (i, (name, v)) in dump.iter().enumerate() {
        let sep = if i + 1 == dump.len() { "" } else { "," };
        if v.fract() == 0.0 {
            json.push_str(&format!("  \"{name}\": {v:.0}{sep}\n"));
        } else {
            json.push_str(&format!("  \"{name}\": {v:.2}{sep}\n"));
        }
    }
    json.push_str("}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
