//! E7+E8+E9 / Figure 12 — the F10 case study on AB FatTree vs FatTree.
//!
//! (a) delivery probability vs link-failure probability (k = ∞),
//! (b) hop-count CDF at pr = 1/4,
//! (c) expected hop count conditioned on delivery.
//!
//! Paper shape: F10₀ dips sharply as failures increase while F10₃ and
//! F10₃,₅ stay high; detours buy delivery at the cost of longer paths; on
//! a standard FatTree F10₃,₅'s detours are longer (no 3-hop option).

use mcnetkat_bench::Table;
use mcnetkat_fdd::Manager;
use mcnetkat_net::{FailureModel, NetworkModel, Queries, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_topo::{ab_fattree, fattree, Topology};

const HOP_CAP: u32 = 14;

fn configs() -> Vec<(&'static str, Topology, RoutingScheme)> {
    vec![
        ("AB FatTree, F10_0", ab_fattree(4), RoutingScheme::Ecmp),
        ("AB FatTree, F10_3", ab_fattree(4), RoutingScheme::F10_3),
        ("AB FatTree, F10_3,5", ab_fattree(4), RoutingScheme::F10_3_5),
        ("FatTree,    F10_3,5", fattree(4), RoutingScheme::F10_3_5),
    ]
}

fn main() {
    let probs: Vec<(i64, i64)> = vec![(1, 128), (1, 64), (1, 32), (1, 16), (1, 8), (1, 4)];

    // (a) delivery probability vs failure probability.
    println!("Figure 12(a) — P[delivery] vs link-failure probability (k=∞)\n");
    let mut ta = Table::new(&["pr", "AB/F10_0", "AB/F10_3", "AB/F10_3,5", "FT/F10_3,5"]);
    for &(n, d) in &probs {
        let mut row = vec![format!("1/{d}")];
        for (_, topo, scheme) in configs() {
            let dst = topo.find("edge0_0").unwrap();
            let model = NetworkModel::new(
                topo,
                dst,
                scheme,
                FailureModel::independent(Ratio::new(n, d)),
            );
            let mgr = Manager::new();
            let q = Queries::new(&mgr, &model).expect("compile");
            row.push(format!("{:.4}", q.delivery_avg()));
        }
        ta.row(row);
    }
    ta.print();

    // (b) hop-count CDF at pr = 1/4.
    println!("\nFigure 12(b) — hop-count CDF, pr = 1/4 (P[delivered ∧ hops ≤ x])\n");
    let mut tb = Table::new(&["hops", "AB/F10_0", "AB/F10_3", "AB/F10_3,5", "FT/F10_3,5"]);
    let mut cdfs = Vec::new();
    for (_, topo, scheme) in configs() {
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(
            topo,
            dst,
            scheme,
            FailureModel::independent(Ratio::new(1, 4)),
        )
        .with_hop_cap(HOP_CAP);
        let mgr = Manager::new();
        let q = Queries::new(&mgr, &model).expect("compile");
        cdfs.push(q.hop_stats_avg());
    }
    for hops in 2..=(HOP_CAP as usize) {
        let mut row = vec![hops.to_string()];
        for stats in &cdfs {
            row.push(format!("{:.4}", stats.cdf[hops].1));
        }
        tb.row(row);
    }
    tb.print();

    // (c) expected hop count conditioned on delivery.
    println!("\nFigure 12(c) — E[hop count | delivered]\n");
    let mut tc = Table::new(&["pr", "AB/F10_0", "AB/F10_3", "AB/F10_3,5", "FT/F10_3,5"]);
    for &(n, d) in &probs {
        let mut row = vec![format!("1/{d}")];
        for (_, topo, scheme) in configs() {
            let dst = topo.find("edge0_0").unwrap();
            let model = NetworkModel::new(
                topo,
                dst,
                scheme,
                FailureModel::independent(Ratio::new(n, d)),
            )
            .with_hop_cap(HOP_CAP);
            let mgr = Manager::new();
            let q = Queries::new(&mgr, &model).expect("compile");
            row.push(format!("{:.3}", q.hop_stats_avg().expected_hops));
        }
        tc.row(row);
    }
    tc.print();
}
