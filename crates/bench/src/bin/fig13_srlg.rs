//! Beyond-paper figure: correlated shared-risk-group failures.
//!
//! The paper's case study (§7, Figure 11b) quantifies resilience only
//! under *independent* per-link failures. This experiment runs the same
//! pipeline under correlated "line card" SRLGs — all down links of a
//! switch fail together, with the same per-link marginal probability —
//! and compares:
//!
//! * **(a)** min/avg delivery on fattree(6) under ECMP: failure-oblivious
//!   routing only samples one link per hop, so correlation is invisible
//!   to it (the singleton-SRLG row doubles as the equivalence sanity
//!   check);
//! * **(b)** min delivery and resilience of the F10 schemes on the AB
//!   FatTree: failure-*aware* rerouting loses exactly when primary and
//!   backup share a risk group, so one line-card event (`k = 1`) already
//!   breaks F10₃'s 1-resilience from Figure 11b.
//!
//! `MCNETKAT_SCALE=paper` grows part (a) to fattree(8).

use mcnetkat_bench::{scale, secs, timed, Scale, Table};
use mcnetkat_fdd::Manager;
use mcnetkat_net::{FailureModel, FailureSpec, NetworkModel, Queries, RoutingScheme, Srlg};
use mcnetkat_num::Ratio;
use mcnetkat_topo::{ab_fattree, fattree, Topology};

/// One line-card group per non-edge switch.
fn linecard_spec(topo: &Topology, pr: &Ratio, k: Option<u32>) -> FailureSpec {
    let base = match k {
        Some(k) => FailureSpec::bounded(Ratio::zero(), k),
        None => FailureSpec::independent(Ratio::zero()),
    };
    base.with_groups(Srlg::linecards(topo, pr))
}

fn main() {
    let p = match scale() {
        Scale::Small => 6,
        Scale::Paper => 8,
    };
    let pr = Ratio::new(1, 100);

    println!("(a) ECMP on fattree({p}), per-link failure marginal {pr}\n");
    let topo = fattree(p);
    let dst = topo.find("edge0_0").unwrap();
    let specs: Vec<(&str, FailureSpec)> = vec![
        ("independent", FailureSpec::independent(pr.clone())),
        (
            "SRLG singletons",
            FailureSpec::independent(pr.clone()).with_groups(Srlg::singletons(&topo, &pr)),
        ),
        ("SRLG line cards", linecard_spec(&topo, &pr, None)),
    ];
    let mut table = Table::new(&["failure model", "min delivery", "avg delivery", "compile"]);
    for (name, spec) in specs {
        let model = NetworkModel::new(topo.clone(), dst, RoutingScheme::Ecmp, spec);
        let mgr = Manager::new();
        let (q, t) = timed(|| Queries::new(&mgr, &model).expect("compile"));
        table.row(vec![
            name.into(),
            format!("{:.6}", q.min_delivery().to_f64()),
            format!("{:.6}", q.delivery_avg()),
            secs(t),
        ]);
    }
    table.print();
    println!("\nECMP never reads link health, so only per-link marginals matter:");
    println!("all three rows agree — and the singleton row is the compiled");
    println!("equivalence anchor (singleton SRLGs ≡ independent).\n");

    println!("(b) F10 schemes on ab_fattree(4): independent vs line-card SRLGs\n");
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let schemes = [RoutingScheme::F10_3, RoutingScheme::F10_3_5];
    let mut table = Table::new(&["scheme", "failure model", "min delivery", "1-resilient?"]);
    for scheme in schemes {
        for correlated in [false, true] {
            let mgr = Manager::new();
            let (unbounded, bounded1): (FailureSpec, FailureSpec) = if correlated {
                (
                    linecard_spec(&topo, &pr, None),
                    linecard_spec(&topo, &pr, Some(1)),
                )
            } else {
                (
                    FailureModel::independent(pr.clone()).into(),
                    FailureModel::bounded(pr.clone(), 1).into(),
                )
            };
            let m_unbounded = NetworkModel::new(topo.clone(), dst, scheme, unbounded);
            let q_unbounded = Queries::new(&mgr, &m_unbounded).expect("compile");
            let m_bounded = NetworkModel::new(topo.clone(), dst, scheme, bounded1);
            let q_bounded = Queries::new(&mgr, &m_bounded).expect("compile");
            let resilient = q_bounded.equiv_teleport_within(1e-9).expect("teleport");
            table.row(vec![
                scheme.name().into(),
                if correlated {
                    "SRLG line cards".into()
                } else {
                    "independent".into()
                },
                format!("{:.6}", q_unbounded.min_delivery().to_f64()),
                if resilient { "✓" } else { "✗" }.into(),
            ]);
        }
    }
    table.print();
    println!("\nOne line-card event kills a core's primary *and* all rerouting");
    println!("candidates at once: the F10 schemes stop being 1-resilient, a");
    println!("scenario the independent f_k family cannot express.");
}
