//! Minimal, dependency-free stand-in for the [`rand`] crate.
//!
//! The build environment is fully offline; this shim covers only what the
//! workspace's tests use: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen_range`
//! (over half-open ranges) and `gen_bool`. The generator is splitmix64 —
//! statistically fine for generating test fixtures, not cryptographic.
//!
//! [`rand`]: https://docs.rs/rand

use std::ops::Range;

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw value.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods (blanket-implemented over
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform value in the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (the shim's only RNG).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
