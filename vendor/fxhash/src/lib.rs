//! Minimal, dependency-free stand-in for the [`fxhash`] crate.
//!
//! The build environment is fully offline, so this shim reimplements the
//! FxHash algorithm used by the Firefox and rustc hash tables: a
//! multiply-xor word hash with no SipHash-style keying. It is **not**
//! HashDoS-resistant — it is for interior hash tables whose keys are
//! trusted (hash-cons maps, memo caches), where it is several times
//! faster than the `std` default because small keys hash in a couple of
//! multiply instructions.
//!
//! The API surface matches the slice the workspace uses: [`FxHasher`],
//! [`FxBuildHasher`], and the [`FxHashMap`]/[`FxHashSet`] aliases.
//!
//! [`fxhash`]: https://docs.rs/fxhash

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (from Firefox; also used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructible).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The Fx word hasher: `state = (rotl5(state) ^ word) * SEED` per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_ne_bytes(chunk.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u32::from_ne_bytes(chunk.try_into().unwrap()) as u64);
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.add_to_hash(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.add_to_hash(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add_to_hash(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.add_to_hash(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // Unlike SipHash's RandomState, Fx has no per-instance key.
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let a = b"hello world".to_vec();
        let b = b"hello world".to_vec();
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&a), hash_of(&b"hello worle".to_vec()));
    }
}
