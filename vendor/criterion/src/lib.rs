//! Minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness.
//!
//! The build environment is fully offline, so this shim implements the
//! small API slice `crates/bench/benches/pipeline.rs` uses: benchmark
//! groups, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is
//! honest but simple — per benchmark it runs a warm-up iteration, then
//! samples wall-clock time until a time budget (or the group's
//! `sample_size`) is exhausted and reports min/mean/max to stdout. There
//! are no statistical refinements or HTML reports.
//!
//! For regression tracking, [`criterion_main!`] additionally dumps every
//! benchmark's **median** (in nanoseconds) as a flat JSON object to
//! `BENCH_results.json` in the working directory — override the path with
//! the `CRITERION_RESULTS_PATH` environment variable, or set it to the
//! empty string to disable the dump. The `bench_compare` binary in
//! `crates/bench` diffs such a dump against a checked-in baseline.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Completed measurements: `(label, median)` in benchmark order.
static RESULTS: Mutex<Vec<(String, Duration)>> = Mutex::new(Vec::new());

/// Re-export of `std::hint::black_box`, criterion's optimization barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&name.into(), self.default_sample_size, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// A `label/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function label and a displayed parameter.
    pub fn new(label: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: label.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id from a displayed parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.label.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.label, self.parameter)
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting one sample per call up to the sample
    /// size or a ~2 s budget, whichever comes first.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, untimed
        let budget = Duration::from_secs(2);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget {
                break;
            }
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    let median = {
        let mut sorted = b.samples.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    };
    println!(
        "{label:<40} min {:>12?}  mean {:>12?}  max {:>12?}  ({} samples)",
        min,
        mean,
        max,
        b.samples.len()
    );
    RESULTS
        .lock()
        .expect("results registry poisoned")
        .push((label.to_string(), median));
}

/// Writes the recorded medians as flat JSON (`{"label": nanos, …}`).
///
/// Called by [`criterion_main!`] after all groups run. The destination is
/// `BENCH_results.json` unless `CRITERION_RESULTS_PATH` overrides it; an
/// empty override disables the dump. IO failures print a warning rather
/// than failing the benchmark run.
pub fn dump_results() {
    let path = std::env::var("CRITERION_RESULTS_PATH")
        .unwrap_or_else(|_| "BENCH_results.json".to_string());
    if path.is_empty() {
        return;
    }
    let results = RESULTS.lock().expect("results registry poisoned");
    let mut json = String::from("{\n");
    for (i, (label, median)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        // Labels come from benchmark ids: no quotes/backslashes in
        // practice, but escape defensively so the output stays valid JSON.
        let escaped = label.replace('\\', "\\\\").replace('"', "\\\"");
        json.push_str(&format!("  \"{escaped}\": {}{sep}\n", median.as_nanos()));
    }
    json.push_str("}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {} benchmark medians to {path}", results.len()),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary (requires `harness = false`).
///
/// After the groups run, medians are dumped via [`dump_results`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::dump_results();
        }
    };
}
