//! Minimal, dependency-free stand-in for the [`parking_lot`] crate.
//!
//! The build environment is fully offline, so this shim provides the one
//! type the workspace uses — [`Mutex`] with parking_lot's panic-free
//! `lock()` signature — implemented over `std::sync::Mutex`. Lock
//! poisoning is deliberately ignored (parking_lot mutexes do not poison):
//! a poisoned guard is recovered with `into_inner`.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

use std::sync::MutexGuard as StdMutexGuard;

/// A mutex with `parking_lot`'s API: `lock()` returns the guard directly
/// rather than a `Result`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning, matching parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
