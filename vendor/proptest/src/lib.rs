//! Minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace is fully offline, so the real
//! proptest cannot be fetched from crates.io. This shim implements exactly
//! the slice of the proptest API that the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`,
//!   and `boxed`,
//! * strategies for integer/float ranges, tuples, [`strategy::Just`],
//!   [`strategy::any`], unions
//!   ([`prop_oneof!`]), and [`collection::vec`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`prop_assume!`] macros, and
//! * [`test_runner::ProptestConfig`] with a configurable case count.
//!
//! Generation is driven by a deterministic splitmix64 PRNG seeded from the
//! test's module path and name, so failures are reproducible run-to-run.
//! There is **no shrinking**: a failing case panics with the failed
//! assertion message. That is a deliberate simplification — these tests
//! exist to validate the McNetKAT engines, not to exercise proptest
//! itself.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod test_runner {
    /// Deterministic splitmix64 generator used for all value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a raw seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Creates a generator seeded from a test name (FNV-1a hash), so
        /// each test gets an independent but reproducible stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(h)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Why a generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should be retried.
        Reject(String),
        /// An assertion failed; the test should panic.
        Fail(String),
    }

    /// Result type produced by a `proptest!` body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test must run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy: 'static {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + 'static,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds a bounded-depth recursive strategy: at each level the
        /// generator picks between a leaf (`self`) and the composite
        /// produced by `recurse`. The `_desired_size` / `_branch` hints of
        /// the real proptest API are accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            S: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                current = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            current
        }
    }

    /// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A clonable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over the given (nonempty) alternatives.
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!alternatives.is_empty(), "empty prop_oneof!");
            Union(alternatives)
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + 'static,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types with a canonical full-range strategy ([`any`]).
    pub trait ArbitraryValue: Sized + 'static {
        /// Draws a value from the type's full range.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e9 - 1e9
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec()`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case (retried with fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategy = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(1000),
                    "too many rejected cases in {}",
                    stringify!($name),
                );
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => continue,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!("proptest case {} failed: {}", accepted + 1, msg),
                }
            }
        }
    )*};
}
