//! The (Prob)NetKAT equational laws, checked semantically on the FDD
//! backend with randomly generated guarded programs. These are the
//! axioms the paper's §2 equational reasoning relies on.

use mcnetkat::core::{Field, Pred, Prog};
use mcnetkat::fdd::Manager;
use mcnetkat::num::Ratio;
use proptest::prelude::*;

fn fields() -> Vec<Field> {
    vec![Field::named("kl_a"), Field::named("kl_b")]
}

fn arb_pred() -> BoxedStrategy<Pred> {
    let leaf = prop_oneof![
        Just(Pred::t()),
        Just(Pred::f()),
        (0..2usize, 0..3u32).prop_map(|(f, v)| Pred::test(fields()[f], v)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            inner.prop_map(Pred::not),
        ]
    })
    .boxed()
}

fn arb_prog() -> BoxedStrategy<Prog> {
    let leaf = prop_oneof![
        Just(Prog::skip()),
        Just(Prog::drop()),
        (0..2usize, 0..3u32).prop_map(|(f, v)| Prog::assign(fields()[f], v)),
        arb_pred().prop_map(Prog::filter),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.seq(q)),
            (inner.clone(), 1..4i64, inner.clone()).prop_map(|(p, n, q)| Prog::choice2(
                p,
                Ratio::new(n, 4),
                q
            )),
            (arb_pred(), inner.clone(), inner.clone()).prop_map(|(t, p, q)| Prog::ite(t, p, q)),
        ]
    })
    .boxed()
}

fn equiv(a: &Prog, b: &Prog) -> bool {
    let mgr = Manager::new();
    let fa = mgr.compile(a).expect("compiles");
    let fb = mgr.compile(b).expect("compiles");
    mgr.equiv(fa, fb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequencing is associative: (p;q);r ≡ p;(q;r).
    #[test]
    fn seq_associative(p in arb_prog(), q in arb_prog(), r in arb_prog()) {
        prop_assert!(equiv(
            &p.clone().seq(q.clone()).seq(r.clone()),
            &p.seq(q.seq(r)),
        ));
    }

    /// skip is a two-sided unit; drop is a two-sided annihilator.
    #[test]
    fn seq_units(p in arb_prog()) {
        prop_assert!(equiv(&Prog::skip().seq(p.clone()), &p));
        prop_assert!(equiv(&p.clone().seq(Prog::skip()), &p));
        prop_assert!(equiv(&Prog::drop().seq(p.clone()), &Prog::drop()));
        prop_assert!(equiv(&p.seq(Prog::drop()), &Prog::drop()));
    }

    /// Probabilistic choice: p ⊕r q ≡ q ⊕(1−r) p, and p ⊕r p ≡ p.
    #[test]
    fn choice_laws(p in arb_prog(), q in arb_prog(), n in 0..=4i64) {
        let r = Ratio::new(n, 4);
        let comp = Ratio::one() - &r;
        prop_assert!(equiv(
            &Prog::choice2(p.clone(), r.clone(), q.clone()),
            &Prog::choice2(q, comp, p.clone()),
        ));
        prop_assert!(equiv(&Prog::choice2(p.clone(), r, p.clone()), &p));
    }

    /// Choice distributes over sequencing on the left:
    /// (p ⊕r q) ; s ≡ (p;s) ⊕r (q;s).
    #[test]
    fn choice_left_distributes(p in arb_prog(), q in arb_prog(), s in arb_prog(), n in 1..4i64) {
        let r = Ratio::new(n, 4);
        prop_assert!(equiv(
            &Prog::choice2(p.clone(), r.clone(), q.clone()).seq(s.clone()),
            &Prog::choice2(p.seq(s.clone()), r, q.seq(s)),
        ));
    }

    /// Conditionals: if t then p else p ≡ p, and branch selection works.
    #[test]
    fn conditional_laws(t in arb_pred(), p in arb_prog(), q in arb_prog()) {
        prop_assert!(equiv(&Prog::ite(t.clone(), p.clone(), p.clone()), &p));
        // if t then p else q ≡ if ¬t then q else p
        prop_assert!(equiv(
            &Prog::ite(t.clone(), p.clone(), q.clone()),
            &Prog::ite(t.not(), q, p),
        ));
    }

    /// Guarding: t ; (if t then p else q) ≡ t ; p.
    #[test]
    fn guard_absorption(t in arb_pred(), p in arb_prog(), q in arb_prog()) {
        prop_assert!(equiv(
            &Prog::filter(t.clone()).seq(Prog::ite(t.clone(), p.clone(), q)),
            &Prog::filter(t).seq(p),
        ));
    }

    /// Predicates form a Boolean algebra under the embedding:
    /// filters commute and are idempotent.
    #[test]
    fn filter_laws(t in arb_pred(), u in arb_pred()) {
        let ft = Prog::filter(t.clone());
        let fu = Prog::filter(u.clone());
        prop_assert!(equiv(&ft.clone().seq(fu.clone()), &fu.clone().seq(ft.clone())));
        prop_assert!(equiv(&ft.clone().seq(ft.clone()), &ft));
        // t ; ¬t ≡ drop
        prop_assert!(equiv(
            &Prog::filter(t.clone()).seq(Prog::filter(t.not())),
            &Prog::drop(),
        ));
    }

    /// Assignments: f<-m ; f<-n ≡ f<-n and f<-n ; f=n ≡ f<-n.
    #[test]
    fn assignment_laws(fi in 0..2usize, m in 0..3u32, n in 0..3u32) {
        let f = fields()[fi];
        prop_assert!(equiv(
            &Prog::assign(f, m).seq(Prog::assign(f, n)),
            &Prog::assign(f, n),
        ));
        prop_assert!(equiv(
            &Prog::assign(f, n).seq(Prog::test(f, n)),
            &Prog::assign(f, n),
        ));
        // Distinct fields commute.
        let g = fields()[1 - fi];
        prop_assert!(equiv(
            &Prog::assign(f, m).seq(Prog::assign(g, n)),
            &Prog::assign(g, n).seq(Prog::assign(f, m)),
        ));
    }

    /// while t do p ≡ if t then (p ; while t do p) else skip — the
    /// characteristic unrolling, on programs whose loops are built from
    /// loop-free bodies.
    #[test]
    fn while_unrolling(t in arb_pred(), body in arb_prog()) {
        let w = Prog::while_(t.clone(), body.clone());
        let unrolled = Prog::ite(t, body.seq(w.clone()), Prog::skip());
        prop_assert!(equiv(&w, &unrolled));
    }

    /// Refinement is a partial order compatible with ⊕.
    #[test]
    fn refinement_compatible_with_choice(p in arb_prog(), q in arb_prog()) {
        let mgr = Manager::new();
        let fp = mgr.compile(&p).unwrap();
        let fq = mgr.compile(&q).unwrap();
        let mix = mgr.compile(&Prog::choice2(p.clone(), Ratio::new(1, 2), q.clone())).unwrap();
        if mgr.less_eq(fp, fq) {
            // p ≤ q ⟹ p ≤ p⊕q ≤ q pointwise on delivered outputs.
            prop_assert!(mgr.less_eq(fp, mix));
            prop_assert!(mgr.less_eq(mix, fq));
        }
    }
}
