//! End-to-end integration tests spanning all crates: paper-level claims
//! checked on full network models.

use mcnetkat::baseline::ExactInference;
use mcnetkat::fdd::Manager;
use mcnetkat::net::{
    chain_benchmark, chain_expected_delivery, compile_model_parallel, running_example,
    FailureModel, NetworkModel, Queries, RoutingScheme,
};
use mcnetkat::num::Ratio;
use mcnetkat::prism::{check_reachability, translate, McMode};
use mcnetkat::topo::{ab_fattree, fattree, parse_dot, to_dot};

/// §2: the paper's headline numbers, end to end.
#[test]
fn running_example_full_claims() {
    let ex = running_example();
    let mgr = Manager::new();
    let tele = mgr.compile(&ex.teleport()).unwrap();
    let pk = ex.ingress_packet();

    // Correctness without failures, 1-resilience under f1.
    for policy in [&ex.naive, &ex.resilient] {
        let m = mgr.compile(&ex.model(policy, &ex.f0)).unwrap();
        assert!(mgr.equiv(m, tele));
    }
    let resil_f1 = mgr.compile(&ex.model(&ex.resilient, &ex.f1)).unwrap();
    assert!(mgr.equiv(resil_f1, tele));

    // The quoted 80% / 96% SLA numbers.
    let naive_f2 = mgr.compile(&ex.model(&ex.naive, &ex.f2)).unwrap();
    let resil_f2 = mgr.compile(&ex.model(&ex.resilient, &ex.f2)).unwrap();
    assert_eq!(mgr.prob_delivery(naive_f2, &pk), Ratio::new(4, 5));
    assert_eq!(mgr.prob_delivery(resil_f2, &pk), Ratio::new(24, 25));

    // The refinement chain drop < naive < resilient < teleport.
    let bot = mgr.fail();
    assert!(mgr.less(bot, naive_f2));
    assert!(mgr.less(naive_f2, resil_f2));
    assert!(mgr.less(resil_f2, tele));
}

/// Figure 11(b)'s diagonal: 0/2/3-resilience of the three schemes.
#[test]
fn f10_resilience_table_diagonal() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let pr = Ratio::new(1, 100);
    let expect: [(RoutingScheme, u32); 3] = [
        (RoutingScheme::Ecmp, 0),
        (RoutingScheme::F10_3, 2),
        (RoutingScheme::F10_3_5, 3),
    ];
    for (scheme, resilience) in expect {
        // Resilient at k = resilience…
        let mgr = Manager::new();
        let m = NetworkModel::new(
            topo.clone(),
            dst,
            scheme,
            FailureModel::bounded(pr.clone(), resilience),
        );
        let q = Queries::new(&mgr, &m).unwrap();
        assert!(
            q.equiv_teleport_within(1e-9).unwrap(),
            "{} should be {}-resilient",
            scheme.name(),
            resilience
        );
        // …but not at k + 1.
        let m = NetworkModel::new(
            topo.clone(),
            dst,
            scheme,
            FailureModel::bounded(pr.clone(), resilience + 1),
        );
        let q = Queries::new(&mgr, &m).unwrap();
        assert!(
            !q.equiv_teleport_within(1e-9).unwrap(),
            "{} should not be {}-resilient",
            scheme.name(),
            resilience + 1
        );
    }
}

/// All three engines agree exactly on the chain benchmark.
#[test]
fn chain_engines_agree() {
    let pfail = Ratio::new(1, 16);
    let bench = chain_benchmark(3, pfail.clone());
    let expect = chain_expected_delivery(3, &pfail);

    let mgr = Manager::new();
    let fdd = mgr.compile(&bench.program).unwrap();
    assert_eq!(mgr.prob_matching(fdd, &bench.input, &bench.accept), expect);

    let auto = translate(&bench.program).unwrap();
    let mc = check_reachability(&auto, &bench.input, &bench.accept, McMode::Exact).unwrap();
    assert_eq!(mc.exact, Some(expect.clone()));
    let approx = check_reachability(&auto, &bench.input, &bench.accept, McMode::Approx).unwrap();
    assert!((approx.probability - expect.to_f64()).abs() < 1e-9);

    let base = ExactInference::new(96).query(&bench.program, &bench.input, &bench.accept);
    assert!(base.is_exact());
    assert_eq!(base.probability, expect);
}

/// The parallel map-reduce backend is semantics-preserving on a model
/// with failures and detours.
#[test]
fn parallel_backend_preserves_semantics() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let model = NetworkModel::new(
        topo,
        dst,
        RoutingScheme::F10_3_5,
        FailureModel::bounded(Ratio::new(1, 10), 2),
    );
    let mgr = Manager::new();
    let sequential = model.compile(&mgr).unwrap();
    let parallel = compile_model_parallel(&mgr, &model, 3, &Default::default()).unwrap();
    assert!(mgr.equiv(sequential, parallel));
}

/// Topology round trip through DOT does not change verification results.
#[test]
fn dot_round_trip_preserves_model_results() {
    let topo = fattree(4);
    let reparsed = parse_dot(&to_dot(&topo)).unwrap();
    let dst1 = topo.find("edge0_0").unwrap();
    let dst2 = reparsed.find("edge0_0").unwrap();
    let mgr = Manager::new();
    // Levels survive the round trip, so ECMP models agree.
    let m1 = NetworkModel::new(topo, dst1, RoutingScheme::Ecmp, FailureModel::none());
    let m2 = NetworkModel::new(reparsed, dst2, RoutingScheme::Ecmp, FailureModel::none());
    let f1 = m1.compile(&mgr).unwrap();
    let f2 = m2.compile(&mgr).unwrap();
    assert!(mgr.equiv(f1, f2));
}

/// FatTree vs AB FatTree: same delivery under ECMP without failures, but
/// the AB wiring strictly helps F10_3 under failures.
#[test]
fn ab_wiring_helps_f10() {
    let pr = FailureModel::independent(Ratio::new(1, 8));
    let mgr = Manager::new();
    let mk = |topo: mcnetkat::topo::Topology, scheme| {
        let dst = topo.find("edge0_0").unwrap();
        NetworkModel::new(topo, dst, scheme, pr.clone())
    };
    let ab = mk(ab_fattree(4), RoutingScheme::F10_3);
    let ft = mk(fattree(4), RoutingScheme::F10_3);
    let q_ab = Queries::new(&mgr, &ab).unwrap();
    let q_ft = Queries::new(&mgr, &ft).unwrap();
    let src_ab = ab.topo.find("edge1_0").unwrap();
    let src_ft = ft.topo.find("edge1_0").unwrap();
    // On the standard FatTree no opposite-type aggs exist, so F10_3
    // degenerates and delivers strictly less.
    assert!(q_ft.delivery_prob(src_ft) < q_ab.delivery_prob(src_ab));
}

/// Hop-count accounting: shortest paths dominate when there are no
/// failures, and the CDF is monotone.
#[test]
fn hop_count_cdf_sane() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let model = NetworkModel::new(
        topo,
        dst,
        RoutingScheme::F10_3,
        FailureModel::independent(Ratio::new(1, 4)),
    )
    .with_hop_cap(12);
    let mgr = Manager::new();
    let q = Queries::new(&mgr, &model).unwrap();
    let stats = q.hop_stats_avg();
    let mut prev = 0.0;
    for &(_, p) in &stats.cdf {
        assert!(p >= prev - 1e-12, "CDF must be monotone");
        prev = p;
    }
    assert!(stats.delivery > 0.9);
    assert!(stats.expected_hops >= 2.0);
}
