//! Differential testing: the production FDD compiler against the
//! reference denotational interpreter (Theorem 3.1 says they must agree),
//! and against the PRISM-translation backend, on randomly generated
//! guarded programs.

use mcnetkat::core::{Field, Interp, Packet, Pred, Prog};
use mcnetkat::fdd::Manager;
use mcnetkat::num::Ratio;
use proptest::prelude::*;

fn fields() -> Vec<Field> {
    vec![
        Field::named("dt_a"),
        Field::named("dt_b"),
        Field::named("dt_c"),
    ]
}

fn arb_pred(depth: u32) -> BoxedStrategy<Pred> {
    let leaf = prop_oneof![
        Just(Pred::t()),
        Just(Pred::f()),
        (0..3usize, 0..4u32).prop_map(|(f, v)| Pred::test(fields()[f], v)),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            inner.prop_map(Pred::not),
        ]
    })
    .boxed()
}

/// Loop-free guarded programs.
fn arb_prog(depth: u32) -> BoxedStrategy<Prog> {
    let leaf = prop_oneof![
        Just(Prog::skip()),
        Just(Prog::drop()),
        (0..3usize, 0..4u32).prop_map(|(f, v)| Prog::assign(fields()[f], v)),
        arb_pred(1).prop_map(Prog::filter),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.seq(q)),
            (inner.clone(), 1..8i64, inner.clone()).prop_map(|(p, n, q)| Prog::choice2(
                p,
                Ratio::new(n, 8),
                q
            )),
            (arb_pred(1), inner.clone(), inner.clone()).prop_map(|(t, p, q)| Prog::ite(t, p, q)),
            (0..3usize, 0..4u32, inner.clone()).prop_map(|(f, v, p)| Prog::local(
                fields()[f],
                v,
                p
            )),
        ]
    })
    .boxed()
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    proptest::collection::vec(0..4u32, 3)
        .prop_map(|vs| Packet::from_pairs(fields().into_iter().zip(vs)))
}

/// The interpreter's output distribution as a sorted, exact map.
fn interp_dist(prog: &Prog, pk: &Packet) -> Vec<(Option<Packet>, Ratio)> {
    Interp::new()
        .eval_packet(prog, pk)
        .iter()
        .map(|(o, r)| (o.clone(), r.clone()))
        .filter(|(_, r)| !r.is_zero())
        .collect()
}

/// The FDD backend's output distribution in the same shape.
fn fdd_dist(mgr: &Manager, prog: &Prog, pk: &Packet) -> Vec<(Option<Packet>, Ratio)> {
    let fdd = mgr.compile(prog).expect("guarded program compiles");
    mgr.output_dist(fdd, pk)
        .into_iter()
        .filter(|(_, r)| !r.is_zero())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 3.1 on singleton inputs: B⟦p⟧ agrees with ⟦p⟧ exactly.
    #[test]
    fn fdd_matches_reference_interpreter(prog in arb_prog(4), pk in arb_packet()) {
        let mgr = Manager::new();
        prop_assert_eq!(fdd_dist(&mgr, &prog, &pk), interp_dist(&prog, &pk));
    }

    /// The PRISM route computes the same query probabilities.
    #[test]
    fn prism_matches_fdd(prog in arb_prog(3), pk in arb_packet(), t in arb_pred(2)) {
        let mgr = Manager::new();
        let fdd = mgr.compile(&prog).expect("compiles");
        let p_fdd = mgr.prob_matching(fdd, &pk, &t);
        let auto = mcnetkat::prism::translate(&prog).expect("translates");
        let r = mcnetkat::prism::check_reachability(
            &auto, &pk, &t, mcnetkat::prism::McMode::Exact,
        ).expect("model checks");
        prop_assert_eq!(r.exact, Some(p_fdd));
    }

    /// The baseline exact-inference engine agrees on loop-free programs.
    #[test]
    fn baseline_matches_fdd(prog in arb_prog(3), pk in arb_packet()) {
        let mgr = Manager::new();
        let fdd = mgr.compile(&prog).expect("compiles");
        let base = mcnetkat::baseline::ExactInference::default().delivery(&prog, &pk);
        prop_assert!(base.is_exact());
        prop_assert_eq!(base.probability, mgr.prob_delivery(fdd, &pk));
    }

    /// Equivalence is a congruence for sequencing: p ≡ q implies
    /// p;r ≡ q;r (spot-checked with r = a random assignment).
    #[test]
    fn equiv_respects_seq(prog in arb_prog(3), f in 0..3usize, v in 0..4u32) {
        let mgr = Manager::new();
        let a = mgr.compile(&prog).expect("compiles");
        // A syntactic re-association of prog must stay equivalent.
        let reassoc = Prog::skip().seq(prog.clone().seq(Prog::skip()));
        let b = mgr.compile(&reassoc).expect("compiles");
        prop_assert!(mgr.equiv(a, b));
        let pa = mgr.compile(&prog.clone().seq(Prog::assign(fields()[f], v))).unwrap();
        let pb = mgr.compile(&reassoc.seq(Prog::assign(fields()[f], v))).unwrap();
        prop_assert!(mgr.equiv(pa, pb));
    }

    /// Output distributions are genuine probability distributions.
    #[test]
    fn fdd_outputs_are_distributions(prog in arb_prog(4), pk in arb_packet()) {
        let mgr = Manager::new();
        let total: Ratio = fdd_dist(&mgr, &prog, &pk).into_iter().map(|(_, r)| r).sum();
        prop_assert_eq!(total, Ratio::one());
    }

    /// `drop ≤ p ≤ skip-like upper bounds`: refinement sanity.
    #[test]
    fn refinement_bounds(prog in arb_prog(3)) {
        let mgr = Manager::new();
        let p = mgr.compile(&prog).expect("compiles");
        prop_assert!(mgr.less_eq(mgr.fail(), p));
        prop_assert!(mgr.less_eq(p, p));
    }
}

/// Loops with deterministically decreasing counters terminate within the
/// interpreter budget, so the two semantics can be compared exactly.
#[test]
fn fdd_matches_interpreter_on_counting_loops() {
    let f = Field::named("dt_loop");
    for start in 0..5u32 {
        let body = Prog::case(
            (1..=4)
                .map(|v| (Pred::test(f, v), Prog::assign(f, v - 1)))
                .collect(),
            Prog::drop(),
        );
        let prog = Prog::while_(Pred::test(f, 0).not(), body);
        let pk = Packet::new().with(f, start);
        let mgr = Manager::new();
        assert_eq!(
            fdd_dist(&mgr, &prog, &pk),
            interp_dist(&prog, &pk),
            "start = {start}"
        );
    }
}

/// A probabilistic loop where the interpreter's residual vanishes only in
/// the limit: the FDD closed form must dominate every finite unrolling.
#[test]
fn fdd_closed_form_dominates_unrollings() {
    let f = Field::named("dt_geo");
    let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 3), Prog::skip());
    let prog = Prog::while_(Pred::test(f, 0), body);
    let mgr = Manager::new();
    let fdd = mgr.compile(&prog).unwrap();
    let exact = mgr.prob_delivery(fdd, &Packet::new());
    assert_eq!(exact, Ratio::one());
    for budget in [1usize, 4, 16] {
        let approx = Interp::with_budget(budget)
            .eval_packet(&prog, &Packet::new())
            .mass();
        assert!(approx < exact, "budget {budget}");
    }
}
