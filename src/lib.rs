//! McNetKAT: scalable verification of probabilistic networks, in Rust.
//!
//! This facade crate re-exports the workspace members. See the README for an
//! architecture overview and `DESIGN.md` for the system inventory.
pub use mcnetkat_baseline as baseline;
pub use mcnetkat_core as core;
pub use mcnetkat_fdd as fdd;
pub use mcnetkat_linalg as linalg;
pub use mcnetkat_net as net;
pub use mcnetkat_num as num;
pub use mcnetkat_prism as prism;
pub use mcnetkat_topo as topo;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // One symbol per subsystem, so a broken re-export fails to build.
        let _ = crate::num::Ratio::new(1, 2);
        let _ = crate::core::Prog::skip();
        let _ = crate::linalg::SolverBackend::SparseLu;
        let _ = crate::fdd::Manager::new();
        let _ = crate::topo::chain(1);
        let _ = crate::prism::McMode::Exact;
        let _ = crate::baseline::ExactInference::default();
        let _ = crate::net::FailureModel::none();
    }
}
