//! McNetKAT: scalable verification of probabilistic networks, in Rust.
//!
//! This facade crate re-exports the workspace members. Two documents at
//! the repository root go with it: `README.md` is the crate-by-crate
//! architecture overview (with the paper cross-reference and the
//! per-figure benchmark index), and `DESIGN.md` is the system inventory —
//! per-module responsibilities, the solver-backend matrix, and the
//! invariants the implementation maintains.
//!
//! # Quickstart
//!
//! A doctested mirror of `examples/quickstart.rs`
//! (`cargo run --example quickstart` — same flow, assertions instead of
//! printing): build
//! a probabilistic loop, compile it to a probabilistic FDD — the loop is
//! solved in *closed form* via an absorbing Markov chain, no unrolling —
//! and ask for delivery probability, equivalence, and refinement.
//!
//! ```
//! use mcnetkat::core::{Field, Packet, Pred, Prog};
//! use mcnetkat::fdd::Manager;
//! use mcnetkat::num::Ratio;
//!
//! // A coin-flipping loop: while f = 0, set f to 1 with probability ½.
//! let f = Field::named("readme_f");
//! let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::skip());
//! let lossy_loop = Prog::while_(Pred::test(f, 0), body);
//!
//! let mgr = Manager::new();
//! let fdd = mgr.compile(&lossy_loop)?;
//!
//! // The loop exits with probability exactly 1 (closed form).
//! let input = Packet::new(); // f = 0
//! assert_eq!(mgr.prob_delivery(fdd, &input), Ratio::one());
//!
//! // Program equivalence is decidable (Corollary 3.2): the loop is
//! // equivalent to the straight-line program `if f=0 then f<-1`.
//! let spec = Prog::ite(Pred::test(f, 0), Prog::assign(f, 1), Prog::skip());
//! let spec_fdd = mgr.compile(&spec)?;
//! assert!(mgr.equiv(fdd, spec_fdd));
//!
//! // Refinement: a program that sometimes drops is strictly below one
//! // that always delivers.
//! let flaky = Prog::ite(
//!     Pred::test(f, 0),
//!     Prog::choice2(Prog::assign(f, 1), Ratio::new(9, 10), Prog::drop()),
//!     Prog::skip(),
//! );
//! let flaky_fdd = mgr.compile(&flaky)?;
//! assert!(mgr.less(flaky_fdd, fdd));
//! # Ok::<(), mcnetkat::fdd::CompileError>(())
//! ```
#![forbid(unsafe_code)]

pub use mcnetkat_analysis as analysis;
pub use mcnetkat_baseline as baseline;
pub use mcnetkat_core as core;
pub use mcnetkat_fdd as fdd;
pub use mcnetkat_linalg as linalg;
pub use mcnetkat_net as net;
pub use mcnetkat_num as num;
pub use mcnetkat_prism as prism;
pub use mcnetkat_serve as serve;
pub use mcnetkat_topo as topo;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // One symbol per subsystem, so a broken re-export fails to build.
        let _ = crate::num::Ratio::new(1, 2);
        let _ = crate::core::Prog::skip();
        let _ = crate::linalg::SolverBackend::SparseLu;
        let _ = crate::fdd::Manager::new();
        let _ = crate::topo::chain(1);
        let _ = crate::prism::McMode::Exact;
        let _ = crate::baseline::ExactInference::default();
        let _ = crate::net::FailureModel::none();
        let _ = crate::serve::Engine::default();
    }
}
